// The observability plane: metric registry semantics (histogram quantile
// accuracy against exact nearest-rank, concurrent lock-free updates — this
// file runs in CI's ThreadSanitizer job — and the Prometheus exposition
// format pinned by a golden string), the trace plane (span nesting, ring
// eviction, Chrome trace-event export), and the wire surface end-to-end
// over loopback: a traced submit's id travels client -> daemon -> router ->
// shard, and `metrics`/`trace` PDUs read it all back.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ir/builder.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/protocol.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace xrl {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Tracing on for the scope of one test, off (and the buffer cleared)
/// afterwards so tests cannot leak spans into each other.
struct Scoped_tracing {
    Scoped_tracing() { set_trace_enabled(true); }
    ~Scoped_tracing()
    {
        set_trace_enabled(false);
        Trace_buffer::global().clear();
    }
};

/// The quickstart graph (paper Figure 1): y = relu(x.w + b).
Graph quickstart_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

Daemon_config smoke_daemon()
{
    Daemon_config config;
    config.router.shards.resize(1);
    Service_config& service = config.router.shards[0].server.service;
    service.backend_options["taso.budget"] = 15;
    service.backend_options["pet.budget"] = 8;
    config.timeouts.connect_seconds = 5.0;
    config.timeouts.read_seconds = 10.0;
    config.timeouts.write_seconds = 10.0;
    return config;
}

Client_config client_for(const Daemon& daemon)
{
    Client_config config;
    config.host = daemon.host();
    config.port = daemon.port();
    config.timeouts.connect_seconds = 5.0;
    config.timeouts.read_seconds = 10.0;
    config.timeouts.write_seconds = 10.0;
    return config;
}

// ---------------------------------------------------------------------------
// Histogram: quantile accuracy against exact nearest-rank
// ---------------------------------------------------------------------------

TEST(MetricsHistogram, QuantileWithinOneBucketOfExactNearestRank)
{
    // Buckets every 100 over [0, 1000]; the estimate interpolates inside
    // the holding bucket, so its error is bounded by one bucket width.
    std::vector<double> bounds;
    for (int i = 1; i <= 10; ++i) bounds.push_back(100.0 * i);
    Histogram histogram(bounds);

    std::vector<double> values;
    for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
    for (double v : values) histogram.observe(v);

    const Histogram::Snapshot snap = histogram.snapshot();
    ASSERT_EQ(snap.count, values.size());
    std::sort(values.begin(), values.end());
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const double exact = values[std::max<std::size_t>(rank, 1) - 1];
        EXPECT_NEAR(snap.quantile(q), exact, 100.0) << "q=" << q;
    }
    EXPECT_NEAR(snap.mean(), 500.5, 1e-9);
}

TEST(MetricsHistogram, SkewedDistributionAndInfBucket)
{
    Histogram histogram({1.0, 10.0});
    for (int i = 0; i < 99; ++i) histogram.observe(0.5);
    histogram.observe(1e9); // lands in +Inf

    const Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_LE(snap.quantile(0.5), 1.0);
    // The +Inf bucket has no upper edge: the estimate answers with its
    // lower bound rather than inventing a value.
    EXPECT_EQ(snap.quantile(1.0), 10.0);
}

TEST(MetricsHistogram, RejectsBadBuckets)
{
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Concurrency: relaxed-atomic updates under TSan
// ---------------------------------------------------------------------------

TEST(MetricsConcurrency, ParallelCountersGaugesHistogramsLoseNothing)
{
    Metrics_registry registry;
    Counter& counter = registry.counter("xrlflow_test_ops_total", "ops");
    Gauge& gauge = registry.gauge("xrlflow_test_level", "level");
    Histogram& histogram =
        registry.histogram("xrlflow_test_op_us", "op time", {10.0, 100.0, 1000.0});

    constexpr int threads = 8;
    constexpr int per_thread = 20000;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([&] {
            for (int i = 0; i < per_thread; ++i) {
                counter.increment();
                gauge.add(1.0);
                histogram.observe(1.0);
            }
        });
    for (std::thread& worker : workers) worker.join();

    EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_EQ(gauge.value(), static_cast<double>(threads) * per_thread);
    const Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_EQ(snap.sum, static_cast<double>(threads) * per_thread);
}

// ---------------------------------------------------------------------------
// Registry semantics + exposition golden
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateAndSchemaConflicts)
{
    Metrics_registry registry;
    Counter& a = registry.counter("xrlflow_test_total", "t", {{"shard", "0"}});
    Counter& b = registry.counter("xrlflow_test_total", "t", {{"shard", "0"}});
    EXPECT_EQ(&a, &b); // same (name, labels) -> same series
    Counter& other = registry.counter("xrlflow_test_total", "t", {{"shard", "1"}});
    EXPECT_NE(&a, &other);

    EXPECT_THROW((void)registry.gauge("xrlflow_test_total", "t"), std::invalid_argument);
    (void)registry.histogram("xrlflow_test_h", "h", {1.0, 2.0});
    EXPECT_THROW((void)registry.histogram("xrlflow_test_h", "h", {1.0, 3.0}),
                 std::invalid_argument);
}

TEST(MetricsRegistry, ExpositionGolden)
{
    Metrics_registry registry;
    registry
        .counter("xrlflow_test_jobs_total", "Jobs admitted",
                 {{"shard", "0"}, {"backend", "ta\"so"}})
        .increment(3);
    registry.gauge("xrlflow_test_queue_depth", "Jobs waiting").set(2.5);
    Histogram& histogram =
        registry.histogram("xrlflow_test_latency_ms", "Job latency", {1.0, 10.0});
    histogram.observe(0.5);
    histogram.observe(5.0);
    histogram.observe(50.0);

    // Families name-ordered, labels key-sorted, buckets cumulative with a
    // +Inf cap, label values escaped — the whole format in one string.
    const std::string expected = "# HELP xrlflow_test_jobs_total Jobs admitted\n"
                                 "# TYPE xrlflow_test_jobs_total counter\n"
                                 "xrlflow_test_jobs_total{backend=\"ta\\\"so\",shard=\"0\"} 3\n"
                                 "# HELP xrlflow_test_latency_ms Job latency\n"
                                 "# TYPE xrlflow_test_latency_ms histogram\n"
                                 "xrlflow_test_latency_ms_bucket{le=\"1\"} 1\n"
                                 "xrlflow_test_latency_ms_bucket{le=\"10\"} 2\n"
                                 "xrlflow_test_latency_ms_bucket{le=\"+Inf\"} 3\n"
                                 "xrlflow_test_latency_ms_sum 55.5\n"
                                 "xrlflow_test_latency_ms_count 3\n"
                                 "# HELP xrlflow_test_queue_depth Jobs waiting\n"
                                 "# TYPE xrlflow_test_queue_depth gauge\n"
                                 "xrlflow_test_queue_depth 2.5\n";
    EXPECT_EQ(registry.expose(), expected);
}

// ---------------------------------------------------------------------------
// Trace plane: spans, nesting, eviction, export
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansCostNothingAndRecordNothing)
{
    set_trace_enabled(false);
    Trace_buffer::global().clear();
    const Trace_scope scope(new_trace_id(), 0);
    {
        Span_scope span("never/recorded");
        EXPECT_FALSE(span.active());
        span.annotate("key", "value"); // no-op, must not crash
    }
    EXPECT_EQ(Trace_buffer::global().size(), 0U);
}

TEST(Trace, SpansNestAndCarryTheTraceId)
{
    const Scoped_tracing tracing;
    const std::uint64_t trace_id = new_trace_id();
    {
        const Trace_scope scope(trace_id, 77);
        Span_scope outer("test/outer");
        outer.annotate("k", "v");
        { Span_scope inner("test/inner"); }
    }
    // Inner ends first, so it is recorded first.
    const std::vector<Trace_span> spans = Trace_buffer::global().spans_for(trace_id);
    ASSERT_EQ(spans.size(), 2U);
    EXPECT_EQ(spans[0].name, "test/inner");
    EXPECT_EQ(spans[1].name, "test/outer");
    EXPECT_EQ(spans[1].parent_span, 77U);
    EXPECT_EQ(spans[0].parent_span, spans[1].span_id);
    for (const Trace_span& span : spans) EXPECT_EQ(span.trace_id, trace_id);
    ASSERT_EQ(spans[1].annotations.size(), 1U);
    EXPECT_EQ(spans[1].annotations[0].first, "k");
}

TEST(Trace, RingEvictsOldestAndCountsDrops)
{
    Trace_buffer buffer(4);
    for (std::uint64_t i = 1; i <= 6; ++i) {
        Trace_span span;
        span.trace_id = 9;
        span.span_id = i;
        buffer.record(span);
    }
    EXPECT_EQ(buffer.size(), 4U);
    EXPECT_EQ(buffer.dropped(), 2U);
    const std::vector<Trace_span> spans = buffer.spans();
    ASSERT_EQ(spans.size(), 4U);
    // Oldest first, oldest evicted: 3, 4, 5, 6 remain.
    EXPECT_EQ(spans.front().span_id, 3U);
    EXPECT_EQ(spans.back().span_id, 6U);
}

TEST(Trace, ChromeExportIsWellFormed)
{
    Trace_span span;
    span.trace_id = 1;
    span.span_id = 2;
    span.name = "needs \"escaping\"\n";
    span.thread_id = 3;
    span.start_us = 100;
    span.duration_us = 50;
    span.annotations.emplace_back("backend", "taso");

    std::ostringstream os;
    write_chrome_trace(os, {span});
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.substr(json.size() - 2), "]\n");
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"needs \\\"escaping\\\"\\n\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
    EXPECT_NE(json.find("\"backend\":\"taso\""), std::string::npos);
    // No raw control characters survive into the JSON.
    for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x0A);
}

// ---------------------------------------------------------------------------
// Wire: trace ids round-trip through a loopback daemon
// ---------------------------------------------------------------------------

TEST(ObservabilityWire, TraceIdTravelsClientToShardAndBack)
{
    const Scoped_tracing tracing;
    Daemon daemon(smoke_daemon());
    Client client(client_for(daemon));

    const Submit_ok submitted = client.submit("taso", quickstart_graph());
    const std::uint64_t trace_id = client.last_trace_id();
    ASSERT_NE(trace_id, 0U);
    (void)client.wait(submitted.job_id);

    // The shard's execute span is recorded when the worker's scope closes,
    // which can race the terminal poll by a moment.
    std::vector<Trace_span> spans;
    for (int attempt = 0; attempt < 100; ++attempt) {
        spans = Trace_buffer::global().spans_for(trace_id);
        const auto has = [&](const char* name) {
            return std::any_of(spans.begin(), spans.end(),
                               [&](const Trace_span& s) { return s.name == name; });
        };
        if (has("client/submit") && has("daemon/submit") && has("router/dispatch") &&
            has("shard/execute"))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const auto count = [&](const char* name) {
        return std::count_if(spans.begin(), spans.end(),
                             [&](const Trace_span& s) { return s.name == name; });
    };
    EXPECT_EQ(count("client/submit"), 1);
    EXPECT_EQ(count("daemon/submit"), 1);
    EXPECT_EQ(count("router/dispatch"), 1);
    EXPECT_EQ(count("shard/execute"), 1);

    // The daemon resolves the wire job id to the same trace (the loopback
    // daemon shares this process's buffer, so the fetched set matches).
    const Trace_ok by_job = client.trace(submitted.job_id);
    EXPECT_EQ(by_job.trace_id, trace_id);
    ASSERT_GE(by_job.spans.size(), 3U);
    for (const Trace_span& span : by_job.spans) EXPECT_EQ(span.trace_id, trace_id);

    // Codec round trip: every span field survives the wire bit-exactly
    // (neither poll nor trace PDUs record spans, so the sets match).
    const std::vector<Trace_span> local = Trace_buffer::global().spans_for(trace_id);
    const Trace_ok by_id = client.trace(0, trace_id);
    ASSERT_EQ(by_id.spans.size(), local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
        EXPECT_EQ(by_id.spans[i].name, local[i].name);
        EXPECT_EQ(by_id.spans[i].span_id, local[i].span_id);
        EXPECT_EQ(by_id.spans[i].parent_span, local[i].parent_span);
        EXPECT_EQ(by_id.spans[i].start_us, local[i].start_us);
        EXPECT_EQ(by_id.spans[i].duration_us, local[i].duration_us);
        EXPECT_EQ(by_id.spans[i].annotations, local[i].annotations);
    }

    // Unknown wire job id: the typed refusal, not a crash or empty reply.
    try {
        (void)client.trace(999999);
        FAIL() << "expected unknown_job";
    } catch (const Protocol_error& error) {
        EXPECT_EQ(error.code(), Protocol_error_code::unknown_job);
        EXPECT_TRUE(error.remote());
    }
}

TEST(ObservabilityWire, MetricsExpositionCoversTheServingPlane)
{
    Daemon daemon(smoke_daemon());
    Client client(client_for(daemon));
    (void)client.optimize("taso", quickstart_graph());

    const Metrics_ok metrics = client.metrics();
    const std::string& text = metrics.exposition;
    for (const char* series :
         {"xrlflow_server_submitted_total", "xrlflow_server_completed_total",
          "xrlflow_server_queue_depth", "xrlflow_server_inflight", "xrlflow_job_latency_ms_bucket",
          "xrlflow_job_latency_ms_count", "xrlflow_router_submitted_total", "xrlflow_router_shards",
          "xrlflow_shard_breaker_state", "xrlflow_daemon_connections_active",
          "xrlflow_daemon_jobs_submitted"})
        EXPECT_NE(text.find(series), std::string::npos) << series;

    // Spot-parse: the submitted counter for shard 0 is a positive integer.
    const std::string needle = "xrlflow_server_submitted_total{shard=\"0\"} ";
    const std::size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    EXPECT_GE(std::stoull(text.substr(at + needle.size())), 1ULL);
}

// ---------------------------------------------------------------------------
// Stats satellites: uptime and snapshot sequence
// ---------------------------------------------------------------------------

TEST(ObservabilityWire, StatsCarryUptimeAndMonotonicSnapshotSeq)
{
    Daemon daemon(smoke_daemon());
    Client client(client_for(daemon));

    const Stats_ok first = client.stats();
    const Stats_ok second = client.stats();
    EXPECT_GE(first.router.uptime_seconds, 0.0);
    EXPECT_GE(second.router.uptime_seconds, first.router.uptime_seconds);
    EXPECT_GT(second.router.snapshot_seq, first.router.snapshot_seq);
    EXPECT_GT(first.router.total.snapshot_seq, 0U);
    EXPECT_GE(first.router.total.uptime_seconds, 0.0);
}

} // namespace
} // namespace xrl
