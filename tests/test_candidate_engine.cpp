#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "cost/e2e_simulator.h"
#include "env/environment.h"
#include "ir/builder.h"
#include "models/models.h"
#include "rules/candidate_engine.h"
#include "rules/corpus.h"

namespace xrl {
namespace {

/// The legacy candidate set: every rule's apply_all, canonically deduped
/// against the host and against earlier candidates, in rule order — the
/// exact loop the environment ran before the engine existed.
std::vector<std::pair<std::uint64_t, int>> legacy_candidates(const Graph& host,
                                                             const Rule_set& rules,
                                                             std::size_t per_rule_limit)
{
    std::vector<std::pair<std::uint64_t, int>> out;
    std::unordered_set<std::uint64_t> seen;
    seen.insert(host.canonical_hash());
    for (std::size_t rule_index = 0; rule_index < rules.size(); ++rule_index) {
        for (const Graph& candidate : rules[rule_index]->apply_all(host, per_rule_limit)) {
            const std::uint64_t hash = candidate.canonical_hash();
            if (!seen.insert(hash).second) continue;
            out.emplace_back(hash, static_cast<int>(rule_index));
        }
    }
    return out;
}

std::vector<std::pair<std::uint64_t, int>> engine_candidates(const Graph& host,
                                                             const Rule_set& rules,
                                                             std::size_t per_rule_limit,
                                                             std::size_t threads)
{
    const Candidate_engine engine(rules, Candidate_engine_config{per_rule_limit, threads});
    std::vector<std::pair<std::uint64_t, int>> out;
    for (const Engine_candidate& c : engine.generate(host).candidates)
        out.emplace_back(c.hash, c.rule_index);
    return out;
}

void expect_parity(const Graph& host, std::size_t per_rule_limit)
{
    const Rule_set rules = standard_rule_corpus();
    const auto legacy = legacy_candidates(host, rules, per_rule_limit);
    const auto engine = engine_candidates(host, rules, per_rule_limit, 1);
    ASSERT_FALSE(legacy.empty());
    EXPECT_EQ(legacy, engine);
}

TEST(Candidate_engine, ParityWithLegacyLoopOnBert)
{
    expect_parity(make_bert(Scale::smoke, 32), 4);
}

TEST(Candidate_engine, ParityWithLegacyLoopOnInception)
{
    expect_parity(make_inception_v3(Scale::smoke), 4);
}

TEST(Candidate_engine, DeterministicAcrossThreadCounts)
{
    const Graph bert = make_bert(Scale::smoke, 32);
    const Rule_set rules = standard_rule_corpus();
    const auto serial = engine_candidates(bert, rules, 8, 1);
    const auto pooled = engine_candidates(bert, rules, 8, 4);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, pooled);
}

TEST(Candidate_engine, EnumerateIsLazyForPatternRules)
{
    const Graph bert = make_bert(Scale::smoke, 32);
    const Rule_set rules = standard_rule_corpus();
    const Candidate_engine engine(rules, Candidate_engine_config{4, 1});
    int pattern_records = 0;
    for (const Rewrite_candidate& record : engine.enumerate(bert)) {
        if (record.pre_built != nullptr) continue; // bespoke rules build eagerly
        ++pattern_records;
        EXPECT_FALSE(record.match.node_map.empty());
    }
    EXPECT_GT(pattern_records, 0);
}

TEST(Candidate_engine, MaterializeReportsCanonicalHash)
{
    const Graph bert = make_bert(Scale::smoke, 32);
    const Rule_set rules = standard_rule_corpus();
    const Candidate_engine engine(rules, Candidate_engine_config{4, 1});
    auto records = engine.enumerate(bert);
    ASSERT_FALSE(records.empty());
    int checked = 0;
    for (Rewrite_candidate& record : records) {
        std::uint64_t hash = 0;
        auto graph = engine.materialize(bert, record, &hash);
        if (!graph.has_value()) continue;
        EXPECT_EQ(hash, graph->canonical_hash());
        ++checked;
    }
    EXPECT_GT(checked, 0);
}

TEST(Candidate_engine, TruncatesAtTheCapWithoutMaterialising)
{
    const Graph bert = make_bert(Scale::smoke, 32);
    const Rule_set rules = standard_rule_corpus();
    const Candidate_engine engine(rules, Candidate_engine_config{8, 1});
    const auto full = engine.generate(bert);
    ASSERT_GT(full.candidates.size(), 2u);
    const std::size_t cap = full.candidates.size() / 2;
    const auto capped = engine.generate(bert, cap);
    EXPECT_EQ(capped.candidates.size(), cap);
    EXPECT_GT(capped.truncated, 0u);
    // The capped prefix is exactly the uncapped set's prefix.
    for (std::size_t i = 0; i < cap; ++i) {
        EXPECT_EQ(capped.candidates[i].hash, full.candidates[i].hash);
        EXPECT_EQ(capped.candidates[i].rule_index, full.candidates[i].rule_index);
    }
}

TEST(Candidate_engine, EnvironmentCandidatesMatchLegacyPath)
{
    const Graph model = make_bert(Scale::smoke, 16);
    const Rule_set rules = standard_rule_corpus();
    E2e_simulator sim_a(gtx1080_profile(), 99);
    E2e_simulator sim_b(gtx1080_profile(), 99);

    Env_config engine_config;
    engine_config.per_rule_limit = 4;
    Env_config legacy_config = engine_config;
    legacy_config.use_candidate_engine = false;

    Environment engine_env(model, rules, sim_a, engine_config);
    Environment legacy_env(model, rules, sim_b, legacy_config);

    for (int step = 0; step < 3; ++step) {
        ASSERT_EQ(engine_env.candidates().size(), legacy_env.candidates().size());
        for (std::size_t i = 0; i < engine_env.candidates().size(); ++i) {
            EXPECT_EQ(engine_env.candidates()[i].graph->canonical_hash(),
                      legacy_env.candidates()[i].graph->canonical_hash());
            EXPECT_EQ(engine_env.candidates()[i].rule_index,
                      legacy_env.candidates()[i].rule_index);
        }
        if (engine_env.done() || legacy_env.done()) break;
        engine_env.step(0);
        legacy_env.step(0);
    }
}

/// One scripted step-mode rollout: deterministic action picks, recording
/// every step's full candidate order as (hash, rule_index) pairs.
std::vector<std::vector<std::pair<std::uint64_t, int>>> scripted_rollout(const Graph& initial,
                                                                         int steps)
{
    const Rule_set rules = standard_rule_corpus();
    Candidate_engine engine(rules, Candidate_engine_config{4, 1});
    std::vector<std::vector<std::pair<std::uint64_t, int>>> trace;

    Graph host = initial;
    const Candidate_engine::Step_candidate* via = nullptr;
    Candidate_engine::Step_candidate chosen;
    std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
    for (int step = 0; step < steps; ++step) {
        const Candidate_engine::Step_generated& generated = engine.generate_step(host, 32, via);
        auto& row = trace.emplace_back();
        row.reserve(generated.candidates.size());
        for (const Candidate_engine::Step_candidate& c : generated.candidates)
            row.emplace_back(c.hash, c.rule_index);
        if (generated.candidates.empty()) break;
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        chosen = generated.candidates[(lcg >> 33) % generated.candidates.size()];
        host = *chosen.graph;
        via = &chosen;
    }
    return trace;
}

TEST(Candidate_engine, SameRolloutTwiceYieldsIdenticalCandidateOrder)
{
    // Candidate ordering must not depend on anything run-varying (pointer
    // values, hash-set iteration, pool-slot identity): two identical
    // rollouts in one process see identical candidate lists at every step.
    const Graph bert = make_bert(Scale::smoke, 32);
    const auto first = scripted_rollout(bert, 25);
    const auto second = scripted_rollout(bert, 25);
    ASSERT_GT(first.size(), 1u);
    EXPECT_EQ(first, second);
}

TEST(Candidate_engine, HandlesRulelessCorpus)
{
    const Rule_set empty;
    const Candidate_engine engine(empty, Candidate_engine_config{4, 1});
    Graph_builder b;
    const Edge x = b.input({4, 4});
    const Graph host = b.finish({b.relu(x)});
    EXPECT_TRUE(engine.enumerate(host).empty());
    EXPECT_TRUE(engine.generate(host).candidates.empty());
}

} // namespace
} // namespace xrl
