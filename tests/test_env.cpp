#include <gtest/gtest.h>

#include "env/environment.h"
#include "ir/builder.h"
#include "models/models.h"
#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {
namespace {

Graph fusable_chain()
{
    // Three fusable relu(matmul) pairs => a short but non-trivial episode.
    Graph_builder b;
    Edge x = b.input({8, 16}, "x");
    for (int i = 0; i < 3; ++i) {
        const Edge w = b.weight({16, 16});
        x = b.relu(b.matmul(x, w));
    }
    return b.finish({x});
}

struct Env_fixture {
    Rule_set rules = standard_rule_corpus();
    E2e_simulator sim{gtx1080_profile(), 99};
};

TEST(Environment, ResetProducesCandidates)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    EXPECT_FALSE(env.done());
    EXPECT_FALSE(env.candidates().empty());
    EXPECT_GT(env.initial_latency_ms(), 0.0);
}

TEST(Environment, MaskMarksCandidatesAndNoop)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    const auto mask = env.action_mask();
    EXPECT_EQ(mask.size(), static_cast<std::size_t>(env.action_space()));
    for (std::size_t i = 0; i < env.candidates().size(); ++i) EXPECT_EQ(mask[i], 1);
    for (std::size_t i = env.candidates().size(); i + 1 < mask.size(); ++i) EXPECT_EQ(mask[i], 0);
    EXPECT_EQ(mask.back(), 1); // No-Op always legal
}

TEST(Environment, NoopTerminatesEpisode)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    const Env_step result = env.step(env.noop_action());
    EXPECT_TRUE(result.done);
    EXPECT_TRUE(env.done());
    EXPECT_TRUE(result.measured); // terminal steps measure
}

TEST(Environment, StepAppliesCandidate)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    const std::uint64_t before = env.current_graph().canonical_hash();
    env.step(0);
    EXPECT_NE(env.current_graph().canonical_hash(), before);
    EXPECT_EQ(env.steps_taken(), 1);
}

TEST(Environment, ExplorationRewardBetweenMeasurements)
{
    Env_fixture f;
    Env_config config;
    config.feedback_frequency = 5;
    Environment env(fusable_chain(), f.rules, f.sim, config);
    const Env_step r1 = env.step(0);
    if (!r1.done) {
        EXPECT_FALSE(r1.measured);
        EXPECT_DOUBLE_EQ(r1.reward, config.exploration_reward);
    }
}

TEST(Environment, MeasuresEveryNSteps)
{
    Env_fixture f;
    Env_config config;
    config.feedback_frequency = 2;
    Environment env(fusable_chain(), f.rules, f.sim, config);
    const Env_step r1 = env.step(0); // step 1: not measured (unless done)
    const Env_step r2 = env.done() ? r1 : env.step(0); // step 2: measured
    if (!r1.done) {
        EXPECT_FALSE(r1.measured);
        EXPECT_TRUE(r2.measured);
    }
}

TEST(Environment, Eq2RewardSignTracksImprovement)
{
    // Merging two shared-input matmuls removes a kernel launch, so under a
    // noise-free device the Eq. 2 reward must be strictly positive.
    Graph_builder b;
    const Edge x = b.input({8, 64}, "x");
    const Edge w1 = b.weight({64, 32});
    const Edge w2 = b.weight({64, 32});
    const Graph g = b.finish({b.matmul(x, w1), b.matmul(x, w2)});

    Device_profile quiet = gtx1080_profile();
    quiet.measurement_noise = 0.0;
    E2e_simulator sim(quiet, 5);
    const Rule_set rules = standard_rule_corpus();
    Env_config config;
    config.feedback_frequency = 1; // measure every step
    Environment env(g, rules, sim, config);

    const auto& candidates = env.candidates();
    int merge_index = -1;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const auto& name = env.rules()[static_cast<std::size_t>(candidates[i].rule_index)]->name();
        if (name == "merge-matmul-shared-lhs") {
            merge_index = static_cast<int>(i);
            break;
        }
    }
    ASSERT_GE(merge_index, 0);
    const Env_step result = env.step(merge_index);
    EXPECT_TRUE(result.measured);
    EXPECT_GT(result.reward, 0.0);
}

TEST(Environment, RuleCountsTrackApplications)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    const int rule = env.candidates()[0].rule_index;
    env.step(0);
    EXPECT_EQ(env.rule_application_counts()[static_cast<std::size_t>(rule)], 1);
}

TEST(Environment, MaxStepsTerminates)
{
    Env_fixture f;
    Env_config config;
    config.max_steps = 2;
    Environment env(fusable_chain(), f.rules, f.sim, config);
    env.step(0);
    if (!env.done()) {
        const Env_step r = env.step(0);
        EXPECT_TRUE(r.done);
    }
    EXPECT_TRUE(env.done());
}

TEST(Environment, InvalidActionForbiddenByDefault)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    const int invalid = static_cast<int>(env.candidates().size()); // first padded slot
    if (invalid < env.noop_action()) {
        EXPECT_THROW(env.step(invalid), Contract_violation);
    }
}

TEST(Environment, PenaltyPolicyPunishesAndTerminates)
{
    Env_fixture f;
    Env_config config;
    config.invalid_policy = Invalid_action_policy::penalise;
    Environment env(fusable_chain(), f.rules, f.sim, config);
    const int invalid = static_cast<int>(env.candidates().size());
    ASSERT_LT(invalid, env.noop_action());
    const Env_step r = env.step(invalid);
    EXPECT_TRUE(r.done);
    EXPECT_DOUBLE_EQ(r.reward, -1.0);
}

TEST(Environment, RewardCallbackOverridesDefault)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    env.register_reward_callback([](const Reward_context& ctx) {
        return ctx.measured ? 42.0 : -0.5;
    });
    const Env_step r = env.step(0);
    EXPECT_TRUE(r.reward == 42.0 || r.reward == -0.5);
}

TEST(Environment, ResetRestoresInitialGraph)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    const std::uint64_t initial = env.current_graph().canonical_hash();
    env.step(0);
    env.reset();
    EXPECT_EQ(env.current_graph().canonical_hash(), initial);
    EXPECT_EQ(env.steps_taken(), 0);
    EXPECT_FALSE(env.done());
}

TEST(Environment, CandidateDedupKeepsSetSmall)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    std::set<std::uint64_t> hashes;
    for (const Candidate& c : env.candidates()) hashes.insert(c.graph->canonical_hash());
    EXPECT_EQ(hashes.size(), env.candidates().size());
}

TEST(Environment, ComplexityStatisticIsPlausible)
{
    Env_fixture f;
    Environment env(fusable_chain(), f.rules, f.sim);
    env.step(0);
    EXPECT_GT(env.mean_candidates_per_step(), 0.0);
}

TEST(Environment, RunsOnRealModel)
{
    Env_fixture f;
    Env_config config;
    config.max_steps = 3;
    Environment env(make_bert(Scale::smoke, 16), f.rules, f.sim, config);
    EXPECT_FALSE(env.candidates().empty());
    int guard = 0;
    while (!env.done() && guard++ < 5) env.step(0);
    EXPECT_TRUE(env.done() || guard >= 5);
}

} // namespace
} // namespace xrl
