// The network serving plane: frame codec round trips and fault injection
// (truncated frames, flipped checksum bytes, oversized length prefixes,
// future versions — the record-file contract applied to the wire), and the
// xrlflowd daemon + client library end-to-end over loopback: submit /
// batch / poll / cancel / stats / drain, with remote results proven
// bit-identical to direct Optimization_service calls. Runs in CI's
// ThreadSanitizer job alongside test_server.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/optimization_service.h"
#include "core/result_serial.h"
#include "ir/builder.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/daemon.h"
#include "net/protocol.h"
#include "serve/state_store.h"

namespace xrl {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

struct Scoped_dir {
    fs::path path;

    Scoped_dir()
    {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        path = fs::temp_directory_path() / (std::string("xrlflow_net_") + info->name());
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~Scoped_dir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

/// The quickstart graph (paper Figure 1): y = relu(x.w + b).
Graph quickstart_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

/// Structurally distinct variants (different widths => different hashes).
Graph variant_graph(int n)
{
    Graph_builder b;
    const Edge x = b.input({4, 24 + n}, "x");
    const Edge w = b.weight({24 + n, 12});
    return b.finish({b.relu(b.matmul(x, w))});
}

/// Smoke-scale budgets, matching the daemon binary's --smoke.
Service_config smoke_service()
{
    Service_config config;
    config.backend_options["taso.budget"] = 15;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 1;
    config.backend_options["xrlflow.max_steps"] = 4;
    config.backend_options["xrlflow.hidden_dim"] = 8;
    config.backend_options["xrlflow.max_candidates"] = 15;
    return config;
}

Daemon_config smoke_daemon(std::size_t shards = 1, bool start_paused = false)
{
    Daemon_config config;
    config.router.shards.resize(shards);
    for (Shard_config& shard : config.router.shards) {
        shard.server.service = smoke_service();
        shard.server.start_paused = start_paused;
    }
    // Short transport deadlines so a deadlocked test fails in seconds,
    // not minutes.
    config.timeouts.connect_seconds = 5.0;
    config.timeouts.read_seconds = 10.0;
    config.timeouts.write_seconds = 10.0;
    return config;
}

Client_config client_for(const Daemon& daemon)
{
    Client_config config;
    config.host = daemon.host();
    config.port = daemon.port();
    config.timeouts.connect_seconds = 5.0;
    config.timeouts.read_seconds = 10.0;
    config.timeouts.write_seconds = 10.0;
    return config;
}

/// Bit-exact comparison form: only the wall-clock measurements (and the
/// cache marker) may differ between a remote and a local run of the same
/// deterministic search.
std::string comparable_bytes(Optimize_result result)
{
    result.wall_seconds = 0.0;
    result.from_cache = false;
    result.metadata.erase("training_seconds");
    return result_to_bytes(result);
}

Protocol_error_code code_of(const std::function<void()>& fn)
{
    try {
        fn();
    } catch (const Protocol_error& error) {
        return error.code();
    }
    ADD_FAILURE() << "expected Protocol_error";
    return Protocol_error_code::io;
}

// ---------------------------------------------------------------------------
// Frame codec: round trips
// ---------------------------------------------------------------------------

TEST(NetProtocol, FrameRoundTrip)
{
    const std::string payload = "some payload bytes \x00\x01\x02";
    const std::string bytes = encode_frame(protocol_version, Pdu_type::submit, payload);
    const Frame frame = decode_frame(bytes);
    EXPECT_EQ(frame.version, protocol_version);
    EXPECT_EQ(frame.type, Pdu_type::submit);
    EXPECT_EQ(frame.payload, payload);
}

TEST(NetProtocol, SubmitRoundTripCarriesEverything)
{
    Submit submit;
    submit.backend = "taso";
    submit.request.time_budget_seconds = 1.5;
    submit.request.iteration_budget = 42;
    submit.request.seed = 123;
    submit.request.deterministic = false;
    submit.request.device = Target_device("gpu0");
    submit.graph = quickstart_graph();
    submit.priority = -3;
    submit.deadline_seconds = 9.5;

    const Submit decoded = decode_submit(encode_submit(submit));
    EXPECT_EQ(decoded.backend, "taso");
    EXPECT_EQ(decoded.request.time_budget_seconds, 1.5);
    EXPECT_EQ(decoded.request.iteration_budget, 42);
    EXPECT_EQ(decoded.request.seed, 123U);
    EXPECT_FALSE(decoded.request.deterministic);
    EXPECT_EQ(decoded.request.device.name, "gpu0");
    EXPECT_EQ(decoded.graph.canonical_hash(), submit.graph.canonical_hash());
    EXPECT_EQ(decoded.priority, -3);
    EXPECT_EQ(decoded.deadline_seconds, 9.5);
}

TEST(NetProtocol, InlineDeviceProfileTravels)
{
    Device_profile profile;
    profile.name = "sim-a100";
    profile.flops_per_ms = 2.0e9;
    profile.bytes_per_ms = 1.0e9;
    Submit submit;
    submit.backend = "pet";
    submit.request.device = Target_device(profile);
    submit.graph = quickstart_graph();

    const Submit decoded = decode_submit(encode_submit(submit));
    ASSERT_TRUE(decoded.request.device.profile.has_value());
    EXPECT_EQ(decoded.request.device.profile->fingerprint(), profile.fingerprint());
}

TEST(NetProtocol, PollOkRoundTripWithProgressAndResult)
{
    Poll_ok ok;
    ok.job_id = 7;
    ok.state = Job_state::done;
    ok.progress = Optimize_progress{"taso", 12, 3.25, 0.5};
    Optimize_result result;
    result.best_graph = quickstart_graph();
    result.backend = "taso";
    result.device = "sim";
    result.initial_ms = 2.0;
    result.final_ms = 1.0;
    result.steps = 12;
    result.rule_counts["fuse"] = 3;
    result.metadata["alpha"] = 1.05;
    ok.result = result;

    const Poll_ok decoded = decode_poll_ok(encode_poll_ok(ok));
    EXPECT_EQ(decoded.job_id, 7U);
    EXPECT_EQ(decoded.state, Job_state::done);
    ASSERT_TRUE(decoded.progress.has_value());
    EXPECT_EQ(decoded.progress->step, 12);
    ASSERT_TRUE(decoded.result.has_value());
    EXPECT_EQ(result_to_bytes(*decoded.result), result_to_bytes(result));
}

TEST(NetProtocol, BatchRoundTripPreservesOrder)
{
    Batch_submit batch;
    batch.budget_seconds = 6.0;
    batch.deadline_seconds = 30.0;
    batch.priority = 2;
    for (int n = 0; n < 3; ++n) {
        Batch_submit::Entry entry;
        entry.backend = n % 2 == 0 ? "taso" : "pet";
        entry.graph = variant_graph(n);
        batch.entries.push_back(std::move(entry));
    }
    const Batch_submit decoded = decode_batch_submit(encode_batch_submit(batch));
    ASSERT_EQ(decoded.entries.size(), 3U);
    EXPECT_EQ(decoded.budget_seconds, 6.0);
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(decoded.entries[static_cast<std::size_t>(n)].graph.canonical_hash(),
                  variant_graph(n).canonical_hash());
}

TEST(NetProtocol, StatsOkRoundTrip)
{
    Stats_ok stats;
    stats.router.submitted = 9;
    stats.router.total.completed = 7;
    stats.router.total.inflight = 2;
    stats.router.total.peak_queue_depth = 5;
    stats.router.total.backends["taso"].completed = 4;
    stats.router.shards.resize(2);
    stats.router.shards[1].queue_depth = 3;
    stats.router.routed_to = {4, 5};
    stats.daemon.connections_accepted = 11;
    stats.daemon.jobs_submitted = 9;

    const Stats_ok decoded = decode_stats_ok(encode_stats_ok(stats));
    EXPECT_EQ(decoded.router.submitted, 9U);
    EXPECT_EQ(decoded.router.total.completed, 7U);
    EXPECT_EQ(decoded.router.total.inflight, 2U);
    EXPECT_EQ(decoded.router.total.peak_queue_depth, 5U);
    EXPECT_EQ(decoded.router.total.backends.at("taso").completed, 4U);
    ASSERT_EQ(decoded.router.shards.size(), 2U);
    EXPECT_EQ(decoded.router.shards[1].queue_depth, 3U);
    EXPECT_EQ(decoded.router.routed_to, (std::vector<std::uint64_t>{4, 5}));
    EXPECT_EQ(decoded.daemon.connections_accepted, 11U);
}

// ---------------------------------------------------------------------------
// Frame codec: fault injection
// ---------------------------------------------------------------------------

TEST(NetProtocol, TruncatedFrameIsTyped)
{
    std::string bytes = encode_frame(1, Pdu_type::poll, encode_poll({5, 0.0}));
    bytes.resize(bytes.size() - 3);
    EXPECT_EQ(code_of([&] { (void)decode_frame(bytes); }), Protocol_error_code::truncated);
    // So short not even the header survives.
    EXPECT_EQ(code_of([&] { (void)decode_frame(bytes.substr(0, 4)); }),
              Protocol_error_code::truncated);
}

TEST(NetProtocol, FlippedBytesAreTyped)
{
    const std::string intact = encode_frame(1, Pdu_type::poll, encode_poll({5, 0.0}));

    std::string bad_magic = intact;
    bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5a);
    EXPECT_EQ(code_of([&] { (void)decode_frame(bad_magic); }), Protocol_error_code::bad_magic);

    // A flipped payload byte no longer hashes to the trailer.
    std::string bad_payload = intact;
    bad_payload[protocol_header_size] =
        static_cast<char>(bad_payload[protocol_header_size] ^ 0x5a);
    EXPECT_EQ(code_of([&] { (void)decode_frame(bad_payload); }),
              Protocol_error_code::bad_checksum);

    // A flipped checksum byte too.
    std::string bad_trailer = intact;
    bad_trailer.back() = static_cast<char>(bad_trailer.back() ^ 0x5a);
    EXPECT_EQ(code_of([&] { (void)decode_frame(bad_trailer); }),
              Protocol_error_code::bad_checksum);
}

TEST(NetProtocol, OversizedLengthPrefixIsTypedBeforeAllocation)
{
    // Hand-build a header whose length prefix claims 1 GiB.
    Byte_writer out;
    out.u32(protocol_magic);
    out.u8(1);
    out.u8(static_cast<std::uint8_t>(Pdu_type::poll));
    out.u32(1u << 30);
    std::string bytes = out.take();
    bytes.append(protocol_checksum_size, '\0');
    EXPECT_EQ(code_of([&] { (void)decode_frame(bytes); }), Protocol_error_code::frame_too_large);
}

TEST(NetProtocol, UnknownTypeIsTypedOnlyWhenChecksumClean)
{
    // A clean-hashing frame with a type byte from the future: distinguish
    // "future speaker" from damage.
    const std::string bytes = encode_frame(1, static_cast<Pdu_type>(99), "payload");
    EXPECT_EQ(code_of([&] { (void)decode_frame(bytes); }), Protocol_error_code::unknown_type);
}

TEST(NetProtocol, UndecodablePayloadIsTyped)
{
    EXPECT_EQ(code_of([] { (void)decode_submit("garbage"); }), Protocol_error_code::bad_payload);
    EXPECT_EQ(code_of([] { (void)decode_poll_ok(""); }), Protocol_error_code::bad_payload);
    // Trailing bytes mean a codec mismatch, not a prefix to accept.
    std::string padded = encode_poll({5, 0.0});
    padded += "x";
    EXPECT_EQ(code_of([&] { (void)decode_poll(padded); }), Protocol_error_code::bad_payload);
}

// ---------------------------------------------------------------------------
// Loopback: submit / poll parity with the in-process service
// ---------------------------------------------------------------------------

TEST(NetLoopback, RemoteOptimizeIsBitIdenticalToLocalService)
{
    Daemon daemon(smoke_daemon());
    Client client(client_for(daemon));
    EXPECT_EQ(client.negotiated_version(), protocol_version);
    EXPECT_EQ(client.server_name(), "xrlflowd");
    EXPECT_FALSE(client.backends().empty());

    const Graph graph = quickstart_graph();
    for (const std::string backend : {"taso", "pet"}) {
        const Optimize_result remote = client.optimize(backend, graph);
        Optimization_service reference(smoke_service());
        const Optimize_result local = reference.optimize(backend, graph);
        EXPECT_EQ(comparable_bytes(remote), comparable_bytes(local))
            << backend << ": remote result differs from the in-process service";
    }
}

TEST(NetLoopback, BatchSubmitSharesTheBudgetAndAnswersInOrder)
{
    Daemon daemon(smoke_daemon(2));
    Client client(client_for(daemon));

    Batch_submit batch;
    batch.budget_seconds = 30.0; // split three ways; smoke searches finish early
    batch.priority = 1;
    for (int n = 0; n < 3; ++n) {
        Batch_submit::Entry entry;
        entry.backend = "taso";
        entry.graph = variant_graph(n);
        batch.entries.push_back(std::move(entry));
    }
    const Batch_ok submitted = client.batch_submit(batch);
    ASSERT_EQ(submitted.jobs.size(), 3U);

    Optimization_service reference(smoke_service());
    for (int n = 0; n < 3; ++n) {
        const Optimize_result remote = client.wait(submitted.jobs[static_cast<std::size_t>(n)].job_id);
        Optimize_request request;
        request.time_budget_seconds = 10.0; // 30 / 3: the daemon's even split
        const Optimize_result local = reference.optimize("taso", variant_graph(n), request);
        EXPECT_EQ(comparable_bytes(remote), comparable_bytes(local)) << "entry " << n;
    }

    const Stats_ok stats = client.stats();
    EXPECT_EQ(stats.daemon.jobs_submitted, 3U);
    EXPECT_EQ(stats.router.submitted, 3U);
}

TEST(NetLoopback, EmptyBatchIsRejectedTyped)
{
    Daemon daemon(smoke_daemon());
    Client client(client_for(daemon));
    try {
        (void)client.batch_submit({});
        FAIL() << "expected Protocol_error";
    } catch (const Protocol_error& error) {
        EXPECT_EQ(error.code(), Protocol_error_code::invalid_request);
        EXPECT_TRUE(error.remote());
    }
}

TEST(NetLoopback, PollStreamsStateAndCancelWithdrawsInterest)
{
    // A paused shard keeps jobs queued, so the lifecycle is deterministic.
    Daemon daemon(smoke_daemon(1, /*start_paused=*/true));
    Client client(client_for(daemon));

    const Submit_ok first = client.submit("taso", quickstart_graph());
    const Submit_ok duplicate = client.submit("taso", quickstart_graph());
    EXPECT_FALSE(first.coalesced);
    EXPECT_TRUE(duplicate.coalesced); // identical request attached in-flight
    EXPECT_NE(first.job_id, duplicate.job_id);

    EXPECT_EQ(client.poll(first.job_id).state, Job_state::queued);

    const Submit_ok doomed = client.submit("taso", variant_graph(1));
    const Cancel_ok cancelled = client.cancel(doomed.job_id);
    EXPECT_EQ(cancelled.state, Job_state::cancelled); // queued cancel is immediate
    const Poll_ok after = client.poll(doomed.job_id);
    EXPECT_EQ(after.state, Job_state::cancelled);
    ASSERT_TRUE(after.result.has_value()); // best-so-far: the input graph
    EXPECT_EQ(after.result->best_graph.canonical_hash(),
              variant_graph(1).canonical_hash());

    daemon.router().shard(0).resume();
    const Optimize_result result = client.wait(first.job_id);
    EXPECT_GT(result.final_ms, 0.0);
    // The coalesced duplicate resolves to the very same result.
    EXPECT_EQ(result_to_bytes(client.wait(duplicate.job_id)), result_to_bytes(result));
}

TEST(NetLoopback, TypedErrorsForUnknownJobAndInvalidRequest)
{
    Daemon daemon(smoke_daemon());
    Client client(client_for(daemon));

    EXPECT_EQ(code_of([&] { (void)client.poll(9999); }), Protocol_error_code::unknown_job);
    EXPECT_EQ(code_of([&] { (void)client.cancel(9999); }), Protocol_error_code::unknown_job);
    EXPECT_EQ(code_of([&] { (void)client.submit("no-such-backend", quickstart_graph()); }),
              Protocol_error_code::invalid_request);

    Optimize_request negative;
    negative.time_budget_seconds = -1.0;
    EXPECT_EQ(code_of([&] { (void)client.submit("taso", quickstart_graph(), negative); }),
              Protocol_error_code::invalid_request);

    // The daemon survived all of it.
    EXPECT_GT(client.optimize("taso", quickstart_graph()).final_ms, 0.0);
}

TEST(NetLoopback, StatsCarryQueueDepthInflightAndWireCounters)
{
    Daemon daemon(smoke_daemon(1, /*start_paused=*/true));
    Client client(client_for(daemon));

    for (int n = 0; n < 3; ++n) (void)client.submit("taso", variant_graph(n));

    Stats_ok stats = client.stats();
    EXPECT_EQ(stats.router.total.queue_depth, 3U);
    EXPECT_EQ(stats.router.total.inflight, 3U);
    EXPECT_GE(stats.router.total.peak_queue_depth, 3U);
    EXPECT_EQ(stats.daemon.jobs_submitted, 3U);
    EXPECT_EQ(stats.daemon.jobs_retained, 3U);
    EXPECT_EQ(stats.daemon.connections_active, 1U);
    EXPECT_GE(stats.daemon.frames_received, 4U); // 3 submits + this stats
    EXPECT_EQ(stats.daemon.protocol_errors, 0U);

    daemon.router().shard(0).resume();
    client.drain();
    stats = client.stats();
    EXPECT_EQ(stats.router.total.queue_depth, 0U);
    EXPECT_EQ(stats.router.total.running, 0U);
    EXPECT_EQ(stats.router.total.inflight, 0U);
    EXPECT_GE(stats.router.total.peak_running, 1U);
    EXPECT_EQ(stats.router.total.completed, 3U);
}

TEST(NetLoopback, ConcurrentClientsEachGetTheirOwnResults)
{
    Daemon daemon(smoke_daemon(2));
    constexpr int clients = 4;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            try {
                Client client(client_for(daemon));
                const Optimize_result result = client.optimize("taso", variant_graph(c));
                if (result.best_graph.canonical_hash() == 0) ++failures;
            } catch (...) {
                ++failures;
            }
        });
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GE(daemon.stats().connections_accepted, static_cast<std::uint64_t>(clients));
    EXPECT_EQ(daemon.router().stats().submitted, static_cast<std::uint64_t>(clients));
}

TEST(NetLoopback, ConnectionLimitGetsTypedBusy)
{
    Daemon_config config = smoke_daemon();
    config.max_connections = 1;
    Daemon daemon(config);

    Client first(client_for(daemon));
    try {
        Client second(client_for(daemon));
        FAIL() << "expected Protocol_error{busy}";
    } catch (const Protocol_error& error) {
        EXPECT_EQ(error.code(), Protocol_error_code::busy);
        EXPECT_TRUE(error.remote());
    }
    // The admitted client still works.
    EXPECT_GT(first.optimize("taso", quickstart_graph()).final_ms, 0.0);
}

TEST(NetLoopback, StopSnapshotsWarmStateForTheNextDaemon)
{
    Scoped_dir dir;
    const Graph graph = quickstart_graph();
    Optimize_result first_result;
    {
        Daemon_config config = smoke_daemon();
        config.state_store = std::make_shared<State_store>(State_store_config{dir.str()});
        Daemon daemon(config);
        Client client(client_for(daemon));
        first_result = client.optimize("taso", graph);
        client.close();
        daemon.stop(); // the SIGTERM path: drain + snapshot
    }
    // A restarted daemon over the same store answers from its warm memo.
    Daemon_config config = smoke_daemon();
    config.state_store = std::make_shared<State_store>(State_store_config{dir.str()});
    Daemon daemon(config);
    Client client(client_for(daemon));
    const Optimize_result warm = client.optimize("taso", graph);
    EXPECT_TRUE(warm.from_cache);
    EXPECT_EQ(comparable_bytes(warm), comparable_bytes(first_result));
}

// ---------------------------------------------------------------------------
// Loopback: fault injection against the daemon
// ---------------------------------------------------------------------------

/// Raw-socket attacker: sends `bytes`, returns the daemon's reply error
/// code (reading one frame), then proves the daemon still serves others.
Protocol_error_code daemon_error_for(const Daemon& daemon, const std::string& bytes)
{
    Connection raw = Connection::connect(daemon.host(), daemon.port(), {5.0, 10.0, 10.0});
    raw.send_all(bytes);
    const std::optional<Frame> reply = read_frame(raw);
    if (!reply.has_value()) {
        ADD_FAILURE() << "daemon closed without a typed error";
        return Protocol_error_code::io;
    }
    EXPECT_EQ(reply->type, Pdu_type::error);
    return decode_error(reply->payload).code;
}

TEST(NetFaultInjection, DaemonAnswersTypedErrorsAndNeverDies)
{
    Daemon daemon(smoke_daemon());

    // Garbage that is not even a header.
    EXPECT_EQ(daemon_error_for(daemon, std::string(32, 'Z')), Protocol_error_code::bad_magic);

    // A well-formed hello frame with one flipped payload byte.
    std::string flipped = encode_frame(1, Pdu_type::hello, encode_hello({1, "evil"}));
    flipped[protocol_header_size] = static_cast<char>(flipped[protocol_header_size] ^ 0x5a);
    EXPECT_EQ(daemon_error_for(daemon, flipped), Protocol_error_code::bad_checksum);

    // An oversized length prefix: rejected from the header alone.
    Byte_writer oversized;
    oversized.u32(protocol_magic);
    oversized.u8(1);
    oversized.u8(static_cast<std::uint8_t>(Pdu_type::hello));
    oversized.u32(1u << 30);
    EXPECT_EQ(daemon_error_for(daemon, oversized.take()), Protocol_error_code::frame_too_large);

    // A truncated frame: the header promises more bytes than ever arrive.
    {
        Connection raw = Connection::connect(daemon.host(), daemon.port(), {5.0, 10.0, 10.0});
        const std::string intact = encode_frame(1, Pdu_type::hello, encode_hello({1, "half"}));
        raw.send_all(intact.substr(0, intact.size() - 5));
        raw.shutdown_send();
        const std::optional<Frame> reply = read_frame(raw);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->type, Pdu_type::error);
        EXPECT_EQ(decode_error(reply->payload).code, Protocol_error_code::truncated);
    }

    // A hello from the future (frame stamped with version 9).
    EXPECT_EQ(daemon_error_for(daemon,
                               encode_frame(9, Pdu_type::hello, encode_hello({9, "future"}))),
              Protocol_error_code::unsupported_version);

    // An unknown PDU type that hashes clean.
    EXPECT_EQ(daemon_error_for(daemon, encode_frame(1, static_cast<Pdu_type>(99), "x")),
              Protocol_error_code::unknown_type);

    // A submit before hello: the handshake is mandatory.
    EXPECT_EQ(daemon_error_for(daemon, encode_frame(1, Pdu_type::submit, "")),
              Protocol_error_code::bad_payload);

    // After all that abuse, the daemon still serves a well-behaved client.
    EXPECT_EQ(daemon.stats().protocol_errors, 7U);
    Client client(client_for(daemon));
    EXPECT_GT(client.optimize("taso", quickstart_graph()).final_ms, 0.0);
}

TEST(NetFaultInjection, PostHandshakeVersionDriftIsTypedAndRecoverable)
{
    Daemon daemon(smoke_daemon());
    Client_config config = client_for(daemon);
    Connection raw = Connection::connect(config.host, config.port, config.timeouts);
    write_frame(raw, 1, Pdu_type::hello, encode_hello({1, "drifter"}));
    std::optional<Frame> reply = read_frame(raw);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, Pdu_type::hello_ok);

    // A frame stamped with a version other than the negotiated one.
    write_frame(raw, 3, Pdu_type::stats, "");
    reply = read_frame(raw);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, Pdu_type::error);
    EXPECT_EQ(decode_error(reply->payload).code, Protocol_error_code::unsupported_version);

    // The framing was intact, so the connection survives and recovers.
    write_frame(raw, 1, Pdu_type::stats, "");
    reply = read_frame(raw);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, Pdu_type::stats_ok);
}

// ---------------------------------------------------------------------------
// Fault injection against the client
// ---------------------------------------------------------------------------

/// A misbehaving server: accepts one connection, answers the hello
/// correctly, then answers the next frame with `reply_bytes` and closes.
struct Evil_server {
    Listener listener{"127.0.0.1", 0};
    std::thread thread;

    explicit Evil_server(std::string reply_bytes)
    {
        thread = std::thread([this, reply_bytes = std::move(reply_bytes)] {
            std::optional<Connection> peer = listener.accept({5.0, 10.0, 10.0});
            if (!peer.has_value()) return;
            try {
                (void)read_frame(*peer); // the client's hello
                Hello_ok ok;
                ok.negotiated_version = 1;
                ok.server_name = "evil";
                write_frame(*peer, 1, Pdu_type::hello_ok, encode_hello_ok(ok));
                (void)read_frame(*peer); // the client's request
                peer->send_all(reply_bytes);
                peer->shutdown_send();
                // Hold the socket until the client has read the bytes.
                char drain = 0;
                while (peer->recv_some(&drain, 1) != 0) {}
            } catch (...) {
            }
        });
    }
    ~Evil_server()
    {
        listener.close();
        if (thread.joinable()) thread.join();
    }
};

Client_config evil_client_config(std::uint16_t port)
{
    Client_config config;
    config.port = port;
    config.timeouts = {5.0, 10.0, 10.0};
    return config;
}

TEST(NetFaultInjection, ClientRejectsDamagedRepliesTyped)
{
    const std::string intact = encode_frame(1, Pdu_type::stats_ok, "");

    {
        std::string flipped = intact;
        flipped.back() = static_cast<char>(flipped.back() ^ 0x5a);
        Evil_server server(flipped);
        Client client(evil_client_config(server.listener.port()));
        EXPECT_EQ(code_of([&] { (void)client.stats(); }), Protocol_error_code::bad_checksum);
    }
    {
        Evil_server server(intact.substr(0, intact.size() - 4));
        Client client(evil_client_config(server.listener.port()));
        EXPECT_EQ(code_of([&] { (void)client.stats(); }), Protocol_error_code::truncated);
    }
    {
        Evil_server server(encode_frame(1, static_cast<Pdu_type>(200), ""));
        Client client(evil_client_config(server.listener.port()));
        EXPECT_EQ(code_of([&] { (void)client.stats(); }), Protocol_error_code::unknown_type);
    }
    {
        // A reply from the future: right frame, wrong version byte.
        Evil_server server(encode_frame(7, Pdu_type::stats_ok, ""));
        Client client(evil_client_config(server.listener.port()));
        EXPECT_EQ(code_of([&] { (void)client.stats(); }),
                  Protocol_error_code::unsupported_version);
    }
    {
        // A clean close instead of a reply.
        Evil_server server("");
        Client client(evil_client_config(server.listener.port()));
        EXPECT_EQ(code_of([&] { (void)client.stats(); }), Protocol_error_code::io);
    }
}

TEST(NetFaultInjection, ClientRefusesUnreachableDaemon)
{
    // Grab an ephemeral port and close it: nothing listens there.
    std::uint16_t dead_port = 0;
    {
        Listener probe("127.0.0.1", 0);
        dead_port = probe.port();
    }
    Client_config config;
    config.port = dead_port;
    config.timeouts.connect_seconds = 2.0;
    EXPECT_THROW((void)Client(config), Net_error);
}

} // namespace
} // namespace xrl
