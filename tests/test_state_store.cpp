// Warm-start persistence: the record-file format (round trips, atomic
// writes, fault injection — truncation, flipped checksum bytes, future
// versions), bit-exact Optimize_result serialisation, the State_store
// (policy + memo persistence, age eviction, key isolation), xrlflow policy
// warm starts that skip retraining, server/router snapshot + warm-restart
// parity, and snapshot-under-load concurrency. Runs in CI's
// ThreadSanitizer job alongside test_server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/optimization_service.h"
#include "core/result_serial.h"
#include "ir/builder.h"
#include "ir/graph_io.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/state_store.h"
#include "support/record_file.h"
#include "support/reflect.h"

namespace xrl {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Fresh per-test directory under the system temp dir, removed on scope
/// exit, so store tests never see each other's files.
struct Scoped_dir {
    fs::path path;

    Scoped_dir()
    {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        path = fs::temp_directory_path() /
               (std::string("xrlflow_state_store_") + info->name());
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~Scoped_dir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

std::string read_file(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& contents)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

/// Flip one byte of the file at the first occurrence of `marker` (fault
/// injection aimed at a known record's payload).
void flip_byte_at_marker(const std::string& path, const std::string& marker)
{
    std::string contents = read_file(path);
    const std::size_t at = contents.find(marker);
    ASSERT_NE(at, std::string::npos) << "marker not found in " << path;
    contents[at] = static_cast<char>(contents[at] ^ 0x5a);
    write_file(path, contents);
}

void truncate_file(const std::string& path, std::size_t drop_bytes)
{
    std::string contents = read_file(path);
    ASSERT_GT(contents.size(), drop_bytes);
    contents.resize(contents.size() - drop_bytes);
    write_file(path, contents);
}

/// The quickstart graph (paper Figure 1): y = relu(x.w + b).
Graph quickstart_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

/// Structurally distinct variants (different widths => different hashes).
Graph variant_graph(int n)
{
    Graph_builder b;
    const Edge x = b.input({4, 24 + n}, "x");
    const Edge w = b.weight({24 + n, 12});
    return b.finish({b.relu(b.matmul(x, w))});
}

/// Smoke-scale budgets; xrlflow trains 1 episode so policy persistence has
/// something real to save.
Service_config smoke_service()
{
    Service_config config;
    config.backend_options["taso.budget"] = 15;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 1;
    config.backend_options["xrlflow.max_steps"] = 4;
    config.backend_options["xrlflow.hidden_dim"] = 8;
    config.backend_options["xrlflow.max_candidates"] = 15;
    return config;
}

Server_config smoke_server(std::shared_ptr<State_store> store)
{
    Server_config config;
    config.service = smoke_service();
    config.state_store = std::move(store);
    return config;
}

std::string graph_bytes(const Graph& graph)
{
    Byte_writer out;
    serialise_graph_binary(out, graph);
    return out.take();
}

/// Byte-for-byte result identity modulo the per-hit from_cache stamp.
std::string result_fingerprint(Optimize_result result)
{
    result.from_cache = false;
    return result_to_bytes(result);
}

/// The deterministic parts of a search outcome (what a warm-started policy
/// must reproduce exactly; wall-clock fields legitimately differ).
void expect_same_search_outcome(const Optimize_result& a, const Optimize_result& b)
{
    EXPECT_EQ(graph_bytes(a.best_graph), graph_bytes(b.best_graph));
    EXPECT_EQ(a.initial_ms, b.initial_ms);
    EXPECT_EQ(a.final_ms, b.final_ms);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.rule_counts, b.rule_counts);
    EXPECT_EQ(a.device, b.device);
}

// ---------------------------------------------------------------------------
// Record file format
// ---------------------------------------------------------------------------

TEST(RecordFile, RoundTripPreservesRecords)
{
    Scoped_dir dir;
    const std::string path = (dir.path / "t.xrls").string();
    std::vector<Record> records(3);
    records[0] = {record_file_version, 1.5, "alpha", std::string(64, 'A')};
    records[1] = {record_file_version, 2.5, "beta", std::string(64, 'B')};
    records[2] = {record_file_version, 3.5, "gamma", ""}; // empty payload is legal
    write_record_file(path, records);

    Record_load_report report;
    const std::vector<Record> loaded = read_record_file(path, &report);
    ASSERT_EQ(loaded.size(), 3U);
    EXPECT_EQ(report.loaded, 3U);
    EXPECT_EQ(report.skipped_corrupt, 0U);
    EXPECT_EQ(report.skipped_version, 0U);
    EXPECT_FALSE(report.file_missing);
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].key, records[i].key);
        EXPECT_EQ(loaded[i].payload, records[i].payload);
        EXPECT_EQ(loaded[i].stamp, records[i].stamp);
    }
}

TEST(RecordFile, MissingFileIsColdStartNotError)
{
    Scoped_dir dir;
    Record_load_report report;
    const auto loaded = read_record_file((dir.path / "absent.xrls").string(), &report);
    EXPECT_TRUE(loaded.empty());
    EXPECT_TRUE(report.file_missing);
    EXPECT_EQ(report.skipped_corrupt, 0U);
}

TEST(RecordFile, TruncatedTailSkippedAndCounted)
{
    Scoped_dir dir;
    const std::string path = (dir.path / "t.xrls").string();
    write_record_file(path, {{record_file_version, 0.0, "a", std::string(64, 'A')},
                             {record_file_version, 0.0, "b", std::string(64, 'B')},
                             {record_file_version, 0.0, "c", std::string(64, 'C')}});
    truncate_file(path, 10); // clips record "c" mid-frame

    Record_load_report report;
    const auto loaded = read_record_file(path, &report);
    ASSERT_EQ(loaded.size(), 2U);
    EXPECT_EQ(loaded[0].key, "a");
    EXPECT_EQ(loaded[1].key, "b");
    EXPECT_EQ(report.skipped_corrupt, 1U);
}

TEST(RecordFile, FlippedChecksumByteSkipsOnlyThatRecord)
{
    Scoped_dir dir;
    const std::string path = (dir.path / "t.xrls").string();
    write_record_file(path, {{record_file_version, 0.0, "a", std::string(64, 'A')},
                             {record_file_version, 0.0, "b", std::string(64, 'B')},
                             {record_file_version, 0.0, "c", std::string(64, 'C')}});
    flip_byte_at_marker(path, std::string(64, 'B'));

    Record_load_report report;
    const auto loaded = read_record_file(path, &report);
    ASSERT_EQ(loaded.size(), 2U);
    EXPECT_EQ(loaded[0].key, "a");
    EXPECT_EQ(loaded[1].key, "c"); // the frame walked over the bad record
    EXPECT_EQ(report.skipped_corrupt, 1U);
    EXPECT_EQ(report.loaded, 2U);
}

TEST(RecordFile, FutureRecordVersionSkippedAndCounted)
{
    Scoped_dir dir;
    const std::string path = (dir.path / "t.xrls").string();
    write_record_file(path, {{record_file_version, 0.0, "old", "p"},
                             {record_file_version + 1, 0.0, "new", "q"}});

    Record_load_report report;
    const auto loaded = read_record_file(path, &report);
    ASSERT_EQ(loaded.size(), 1U);
    EXPECT_EQ(loaded[0].key, "old");
    EXPECT_EQ(report.skipped_version, 1U);
    EXPECT_EQ(report.skipped_corrupt, 0U);
}

TEST(RecordFile, FutureHeaderVersionSkipsWholeFile)
{
    Scoped_dir dir;
    const std::string path = (dir.path / "t.xrls").string();
    write_record_file(path, {{record_file_version, 0.0, "a", "p"}});
    // Patch the header's version field (bytes 4..8, after the magic).
    std::string contents = read_file(path);
    const std::uint32_t future = record_file_version + 1;
    contents.replace(4, sizeof(future),
                     std::string(reinterpret_cast<const char*>(&future), sizeof(future)));
    write_file(path, contents);

    Record_load_report report;
    const auto loaded = read_record_file(path, &report);
    EXPECT_TRUE(loaded.empty());
    EXPECT_TRUE(report.header_version_mismatch);
}

TEST(RecordFile, InterruptedWriteNeverCorruptsPreviousSnapshot)
{
    Scoped_dir dir;
    const std::string path = (dir.path / "t.xrls").string();
    write_record_file(path, {{record_file_version, 0.0, "stable", "payload"}});
    // A writer died mid-write: a half-written temp file is left behind.
    write_file(path + ".tmp", "garbage from a crashed writer");

    Record_load_report report;
    const auto loaded = read_record_file(path, &report);
    ASSERT_EQ(loaded.size(), 1U);
    EXPECT_EQ(loaded[0].key, "stable");
    EXPECT_EQ(report.skipped_corrupt, 0U);

    // The next successful write replaces both the snapshot and the stale temp.
    write_record_file(path, {{record_file_version, 0.0, "fresh", "payload2"}});
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    const auto reloaded = read_record_file(path);
    ASSERT_EQ(reloaded.size(), 1U);
    EXPECT_EQ(reloaded[0].key, "fresh");
}

// ---------------------------------------------------------------------------
// Aggregate reflection (the serialiser drift guard)
// ---------------------------------------------------------------------------

TEST(Reflect, AggregateFieldCountMatchesDefinitions)
{
    struct Two {
        int a;
        double b;
    };
    struct Five {
        int a;
        std::string b;
        std::vector<int> c;
        bool d;
        float e;
    };
    static_assert(aggregate_field_count<Two> == 2);
    static_assert(aggregate_field_count<Five> == 5);
    // The guards the serialisers rely on — if one of these fails to
    // compile, a struct grew a field its serialiser does not write.
    static_assert(aggregate_field_count<Optimize_result> == 11);
    static_assert(aggregate_field_count<Op_params> == 21);
    SUCCEED();
}

// ---------------------------------------------------------------------------
// Bit-exact result serialisation
// ---------------------------------------------------------------------------

TEST(ResultSerial, RoundTripIsBitIdentical)
{
    Optimization_service service(smoke_service());
    const Graph graph = quickstart_graph();
    const Optimize_result original = service.optimize("taso", graph);

    const std::string bytes = result_to_bytes(original);
    const Optimize_result restored = result_from_bytes(bytes);
    // Re-serialising the restored result reproduces the exact bytes:
    // nothing — graph ids, float bit patterns, maps — drifted.
    EXPECT_EQ(result_to_bytes(restored), bytes);
    EXPECT_EQ(restored.backend, original.backend);
    EXPECT_EQ(restored.device, original.device);
    EXPECT_EQ(restored.initial_ms, original.initial_ms);
    EXPECT_EQ(restored.final_ms, original.final_ms);
    EXPECT_EQ(restored.steps, original.steps);
    EXPECT_EQ(restored.wall_seconds, original.wall_seconds);
    EXPECT_EQ(restored.rule_counts, original.rule_counts);
    EXPECT_EQ(restored.metadata, original.metadata);
    EXPECT_EQ(graph_bytes(restored.best_graph), graph_bytes(original.best_graph));
    // The restored graph is a live Graph, not just equal bytes.
    EXPECT_EQ(restored.best_graph.model_hash(), original.best_graph.model_hash());
    EXPECT_NO_THROW(restored.best_graph.validate());
}

TEST(ResultSerial, TruncatedBytesThrowInsteadOfCrashing)
{
    Optimization_service service(smoke_service());
    const Optimize_result original = service.optimize("pet", quickstart_graph());
    const std::string bytes = result_to_bytes(original);
    for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, bytes.size() / 2}) {
        EXPECT_THROW((void)result_from_bytes(std::string_view(bytes).substr(0, keep)),
                     std::runtime_error);
    }
    // Trailing garbage is rejected too (a concatenation bug, not a result).
    EXPECT_THROW((void)result_from_bytes(bytes + "x"), std::runtime_error);
}

TEST(ResultSerial, GraphBinaryPreservesTombstones)
{
    Graph graph = quickstart_graph();
    {
        // Grow a dead branch, then DCE it into tombstones: the id space now
        // has holes the text format cannot represent.
        Graph_builder b;
        const Edge x = b.input({4, 8}, "x");
        const Edge w = b.weight({8, 8});
        const Edge dead = b.relu(b.matmul(x, w));
        (void)dead;
        graph = b.finish({b.tanh(b.matmul(x, w))});
    }
    ASSERT_GT(graph.eliminate_dead_nodes(), 0);
    ASSERT_LT(graph.size(), graph.capacity());

    const std::string bytes = graph_bytes(graph);
    Byte_reader in(bytes);
    const Graph restored = deserialise_graph_binary(in);
    EXPECT_TRUE(in.at_end());
    EXPECT_EQ(restored.capacity(), graph.capacity()); // tombstones survived
    EXPECT_EQ(restored.size(), graph.size());
    EXPECT_EQ(graph_bytes(restored), bytes);
    for (const Node_id id : graph.node_ids()) {
        ASSERT_TRUE(restored.is_alive(id));
        EXPECT_EQ(restored.node(id).kind, graph.node(id).kind);
    }
}

TEST(ResultSerial, GraphBinaryRejectsInputEdgeToDeadNode)
{
    // Hand-written stream: capacity 2, slot 0 a tombstone, slot 1 an alive
    // relu whose input references the dead slot — checksum-valid content
    // that must be rejected at load, not crash a later graph walk.
    Byte_writer out;
    out.u32(1); // graph_binary_version
    out.u32(2); // capacity
    out.u8(0);  // slot 0: dead
    out.u8(1);  // slot 1: alive
    out.u8(static_cast<std::uint8_t>(Op_kind::relu));
    // Op_params, field by field (defaults).
    out.u8(static_cast<std::uint8_t>(Activation::none));
    for (const std::int64_t v : {1, 1, 0, 0, 1, 0, 0, 0}) out.i64(v); // strides..axis
    out.u32(0);                                                       // split_sizes
    out.i64(0);                                                       // begin
    out.i64(0);                                                       // end
    for (int list = 0; list < 4; ++list) out.u32(0); // perm/target_shape/pads
    out.i64(0);                                      // target_r
    out.i64(0);                                      // target_s
    out.f32(1e-5F);                                  // epsilon
    out.f32(1.0F);                                   // scalar
    out.u8(1);                                       // keep_dim
    out.u32(1);                                      // one input...
    out.i32(0);                                      // ...the dead slot
    out.i32(0);
    out.u32(0); // no output shapes
    out.u8(0);  // no payload
    out.str("");
    out.u32(1); // outputs: {1, 0}
    out.i32(1);
    out.i32(0);

    Byte_reader in(out.bytes());
    EXPECT_THROW((void)deserialise_graph_binary(in), std::runtime_error);
}

// ---------------------------------------------------------------------------
// State_store: policies
// ---------------------------------------------------------------------------

TEST(StateStore, RequiresDirectory)
{
    EXPECT_THROW((void)State_store(State_store_config{}), std::invalid_argument);
}

TEST(StateStore, PolicyRoundTripAcrossInstances)
{
    Scoped_dir dir;
    const std::string blob(256, '\x7f');
    {
        State_store store(dir.str());
        store.put_policy("policy|model=1|device=2", blob);
        std::string fetched;
        ASSERT_TRUE(store.fetch_policy("policy|model=1|device=2", &fetched));
        EXPECT_EQ(fetched, blob);
        EXPECT_EQ(store.stats().policy_puts, 1U);
        EXPECT_EQ(store.stats().policy_hits, 1U);
    }
    // A new instance over the same directory (process restart) still has it.
    State_store reloaded(dir.str());
    EXPECT_EQ(reloaded.stats().policies_loaded, 1U);
    std::string fetched;
    ASSERT_TRUE(reloaded.fetch_policy("policy|model=1|device=2", &fetched));
    EXPECT_EQ(fetched, blob);
    EXPECT_FALSE(reloaded.fetch_policy("policy|model=9|device=2", &fetched));
    EXPECT_EQ(reloaded.stats().policy_misses, 1U);
}

TEST(StateStore, EvictsEntriesByAge)
{
    Scoped_dir dir;
    double fake_now = 1000.0;
    State_store_config config;
    config.directory = dir.str();
    config.max_age_seconds = 60.0;
    config.clock = [&fake_now] { return fake_now; };
    State_store store(config);

    store.put_policy("old", "o");
    fake_now += 45.0;
    store.put_policy("young", "y");
    fake_now += 30.0; // "old" is now 75s old, "young" 30s

    std::string blob;
    EXPECT_FALSE(store.fetch_policy("old", &blob));
    EXPECT_TRUE(store.fetch_policy("young", &blob));
    EXPECT_GE(store.stats().evicted_by_age, 1U);

    // Eviction applies at load time too: a fresh instance far in the
    // future starts empty.
    State_store_config late = config;
    late.clock = [&fake_now] { return fake_now + 3600.0; };
    State_store reloaded(late);
    EXPECT_FALSE(reloaded.fetch_policy("young", &blob));
    EXPECT_GE(reloaded.stats().evicted_by_age, 1U);
}

TEST(StateStore, CorruptPolicyFileDegradesToMisses)
{
    Scoped_dir dir;
    const std::string blob(128, 'P');
    {
        State_store store(dir.str());
        store.put_policy("the-policy", blob);
    }
    flip_byte_at_marker((fs::path(dir.path) / "policies.xrls").string(), std::string(128, 'P'));

    State_store store(dir.str());
    EXPECT_EQ(store.stats().skipped_corrupt, 1U);
    EXPECT_EQ(store.stats().policies_loaded, 0U);
    std::string fetched;
    EXPECT_FALSE(store.fetch_policy("the-policy", &fetched));
    // The store stays writable after damage.
    store.put_policy("the-policy", blob);
    EXPECT_TRUE(store.fetch_policy("the-policy", &fetched));
    EXPECT_EQ(fetched, blob);
}

// ---------------------------------------------------------------------------
// State_store: memo snapshots
// ---------------------------------------------------------------------------

TEST(StateStore, MemoSaveLoadRoundTripsBitIdentically)
{
    Scoped_dir dir;
    const Graph graph = quickstart_graph();
    Optimization_service first(smoke_service());
    const Optimize_result original = first.optimize("taso", graph);
    {
        State_store store(dir.str());
        EXPECT_EQ(store.save_memo(first), 1U);
    }

    State_store reloaded(dir.str());
    Optimization_service second(smoke_service());
    EXPECT_EQ(reloaded.load_memo(second), 1U);
    const Optimize_result replayed = second.optimize("taso", graph);
    EXPECT_TRUE(replayed.from_cache) << "warm restart must answer from the imported memo";
    EXPECT_EQ(second.cache_misses(), 0U) << "no search ran after restart";
    EXPECT_EQ(result_fingerprint(replayed), result_fingerprint(original));
}

TEST(StateStore, MemoSnapshotsMergeAcrossServices)
{
    Scoped_dir dir;
    State_store store(dir.str());
    Optimization_service a(smoke_service());
    Optimization_service b(smoke_service());
    a.optimize("taso", variant_graph(1));
    b.optimize("taso", variant_graph(2));
    store.save_memo(a);
    store.save_memo(b); // must not clobber a's snapshot
    EXPECT_EQ(store.memo_keys().size(), 2U);

    Optimization_service fresh(smoke_service());
    EXPECT_EQ(store.load_memo(fresh), 2U);
    EXPECT_TRUE(fresh.optimize("taso", variant_graph(1)).from_cache);
    EXPECT_TRUE(fresh.optimize("taso", variant_graph(2)).from_cache);
}

TEST(StateStore, ImportRespectsCapacityAndLiveEntries)
{
    Scoped_dir dir;
    State_store store(dir.str());
    Optimization_service donor(smoke_service());
    for (int n = 0; n < 4; ++n) donor.optimize("taso", variant_graph(n));
    store.save_memo(donor);

    Service_config small = smoke_service();
    small.cache_capacity = 2;
    Optimization_service bounded(small);
    store.load_memo(bounded);
    EXPECT_LE(bounded.cache_size(), 2U);

    // A live result outranks the snapshot: optimize first, import after —
    // the imported duplicate is skipped, not overwritten.
    Optimization_service live(smoke_service());
    const Optimize_result fresh_run = live.optimize("taso", variant_graph(1));
    const std::size_t imported = store.load_memo(live);
    EXPECT_LT(imported, 4U);
    const Optimize_result replay = live.optimize("taso", variant_graph(1));
    EXPECT_EQ(result_fingerprint(replay), result_fingerprint(fresh_run));
}

TEST(StateStore, CorruptMemoRecordSkippedOthersSurvive)
{
    Scoped_dir dir;
    Optimization_service service(smoke_service());
    service.optimize("taso", variant_graph(1));
    service.optimize("pet", variant_graph(1));
    {
        State_store store(dir.str());
        EXPECT_EQ(store.save_memo(service), 2U);
    }
    // Target one record's graph payload: node names survive serialisation
    // verbatim, but both records share them — flip a byte in the *first*
    // record's frame instead by corrupting at a key marker. Memo keys
    // embed the backend name; "pet|" appears only in pet's record.
    flip_byte_at_marker((fs::path(dir.path) / "memo.xrls").string(), "|pet|");

    State_store store(dir.str());
    EXPECT_EQ(store.stats().skipped_corrupt, 1U);
    Optimization_service restored(smoke_service());
    EXPECT_EQ(store.load_memo(restored), 1U);
    EXPECT_TRUE(restored.optimize("taso", variant_graph(1)).from_cache);
    EXPECT_FALSE(restored.optimize("pet", variant_graph(1)).from_cache);
}

TEST(StateStore, FutureVersionMemoRecordSkippedAndCounted)
{
    Scoped_dir dir;
    // Hand-craft a memo file holding one record from "the future".
    const std::string path = (fs::path(dir.path) / "memo.xrls").string();
    write_record_file(path, {{record_file_version + 1, 0.0, "future-key", "future-payload"}});

    State_store store(dir.str());
    EXPECT_EQ(store.stats().skipped_version, 1U);
    EXPECT_EQ(store.stats().memo_loaded, 0U);
    Optimization_service service(smoke_service());
    EXPECT_EQ(store.load_memo(service), 0U);
}

// ---------------------------------------------------------------------------
// xrlflow policy warm start
// ---------------------------------------------------------------------------

TEST(PolicyWarmStart, SecondProcessSkipsTrainingAndMatchesOutputs)
{
    Scoped_dir dir;
    const Graph graph = quickstart_graph();
    Optimize_request request;
    request.seed = 11;

    Service_config cold_config = smoke_service();
    cold_config.policy_store = std::make_shared<State_store>(State_store_config{dir.str()});
    Optimization_service cold(cold_config);
    const Optimize_result trained = cold.optimize("xrlflow", graph, request);
    const auto cold_stats =
        std::static_pointer_cast<State_store>(cold_config.policy_store)->stats();
    EXPECT_EQ(cold_stats.policy_puts, 1U) << "training must persist its policy";
    EXPECT_EQ(cold_stats.policy_hits, 0U);

    // "Restart": fresh store instance over the same directory, fresh service.
    Service_config warm_config = smoke_service();
    auto warm_store = std::make_shared<State_store>(State_store_config{dir.str()});
    warm_config.policy_store = warm_store;
    Optimization_service warm(warm_config);
    const Optimize_result restarted = warm.optimize("xrlflow", graph, request);
    EXPECT_EQ(warm_store->stats().policy_hits, 1U) << "restart must load, not retrain";
    EXPECT_EQ(warm_store->stats().policy_puts, 0U);
    expect_same_search_outcome(trained, restarted);
}

TEST(PolicyWarmStart, KeysIsolateModelAndDevice)
{
    Scoped_dir dir;
    auto store = std::make_shared<State_store>(State_store_config{dir.str()});
    Service_config config = smoke_service();
    config.policy_store = store;
    Optimization_service service(config);

    Optimize_request gtx;
    Optimize_request a100;
    a100.device = Target_device("a100-sim");
    service.optimize("xrlflow", variant_graph(1), gtx);
    service.optimize("xrlflow", variant_graph(1), a100); // same model, other device
    service.optimize("xrlflow", variant_graph(2), gtx);  // other model, same device
    const std::vector<std::string> keys = store->policy_keys();
    ASSERT_EQ(keys.size(), 3U) << "every (model, device) pair trains and persists its own policy";
    for (const std::string& key : keys) {
        EXPECT_NE(key.find("policy|model="), std::string::npos) << key;
        EXPECT_NE(key.find("|device="), std::string::npos) << key;
    }

    // A warm restart fetches per (model, device): both a100 and gtx
    // policies hit, and their outcomes replay independently.
    Service_config warm_config = smoke_service();
    auto warm_store = std::make_shared<State_store>(State_store_config{dir.str()});
    warm_config.policy_store = warm_store;
    Optimization_service warm(warm_config);
    warm.optimize("xrlflow", variant_graph(1), a100);
    warm.optimize("xrlflow", variant_graph(1), gtx);
    EXPECT_EQ(warm_store->stats().policy_hits, 2U);
    EXPECT_EQ(warm_store->stats().policy_puts, 0U);
}

TEST(PolicyWarmStart, CorruptPolicyRecordFallsBackToTraining)
{
    Scoped_dir dir;
    const Graph graph = quickstart_graph();
    {
        Service_config config = smoke_service();
        config.policy_store = std::make_shared<State_store>(State_store_config{dir.str()});
        Optimization_service service(config);
        service.optimize("xrlflow", graph);
    }
    flip_byte_at_marker((fs::path(dir.path) / "policies.xrls").string(), "policy|model=");

    Service_config config = smoke_service();
    auto store = std::make_shared<State_store>(State_store_config{dir.str()});
    config.policy_store = store;
    EXPECT_GE(store->stats().skipped_corrupt, 1U);
    Optimization_service service(config);
    const Optimize_result result = service.optimize("xrlflow", graph); // retrains cleanly
    EXPECT_FALSE(result.cancelled);
    EXPECT_EQ(store->stats().policy_puts, 1U) << "the retrained policy is persisted again";
}

// ---------------------------------------------------------------------------
// Server and router integration
// ---------------------------------------------------------------------------

TEST(ServerPersistence, DrainSnapshotsAndRestartServesFromCache)
{
    Scoped_dir dir;
    const Graph graph = quickstart_graph();
    Optimize_result first;
    auto first_store = std::make_shared<State_store>(State_store_config{dir.str()});
    {
        Optimization_server server(smoke_server(first_store));
        first = server.submit("taso", graph).wait();
        EXPECT_FALSE(first.from_cache);
        server.drain();
        EXPECT_GE(first_store->stats().snapshots_written, 1U);
    }

    auto store = std::make_shared<State_store>(State_store_config{dir.str()});
    Optimization_server server(smoke_server(store));
    const Optimize_result replay = server.submit("taso", graph).wait();
    EXPECT_TRUE(replay.from_cache);
    EXPECT_EQ(result_fingerprint(replay), result_fingerprint(first));
    EXPECT_EQ(server.stats().cache_hits, 1U);
}

TEST(ServerPersistence, PeriodicSnapshotsWithoutDrain)
{
    Scoped_dir dir;
    auto store = std::make_shared<State_store>(State_store_config{dir.str()});
    Server_config config = smoke_server(store);
    config.snapshot_every = 1;
    Optimization_server server(config);
    server.submit("taso", variant_graph(1)).wait();
    server.submit("taso", variant_graph(2)).wait();
    // wait() returns when the job resolves; the snapshot follows on the
    // worker a beat later. Poll briefly instead of draining (drain would
    // snapshot itself and mask the periodic path).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (store->stats().snapshots_written < 2 && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(store->stats().snapshots_written, 2U);
    EXPECT_GE(store->memo_keys().size(), 1U);
}

TEST(ServerPersistence, SnapshotWhileServerActivelyOptimizing)
{
    Scoped_dir dir;
    auto store = std::make_shared<State_store>(State_store_config{dir.str()});
    Optimization_server server(smoke_server(store));

    std::atomic<bool> stop{false};
    std::thread snapshotter([&] {
        while (!stop.load()) store->save_memo(server.service());
    });
    std::vector<Job_handle> handles;
    for (int n = 0; n < 8; ++n) handles.push_back(server.submit("taso", variant_graph(n)));
    for (Job_handle& handle : handles) handle.wait();
    stop.store(true);
    snapshotter.join();
    server.drain();

    // Everything the server learned under concurrent snapshotting restores.
    Optimization_service restored(smoke_service());
    State_store reloaded(dir.str());
    EXPECT_EQ(reloaded.load_memo(restored), 8U);
    for (int n = 0; n < 8; ++n)
        EXPECT_TRUE(restored.optimize("taso", variant_graph(n)).from_cache);
}

Router_config two_shard_fleet(std::shared_ptr<State_store> store)
{
    Router_config config;
    config.shards.resize(2);
    config.shards[0].server = smoke_server(nullptr);
    config.shards[0].device_affinity = {"gtx1080-sim"};
    config.shards[1].server = smoke_server(nullptr);
    config.shards[1].device_affinity = {"a100-sim"};
    config.state_store = std::move(store);
    return config;
}

TEST(RouterPersistence, SharedStoreWarmsAReplacementFleet)
{
    Scoped_dir dir;
    Optimize_request gtx;
    Optimize_request a100;
    a100.device = Target_device("a100-sim");
    {
        Optimization_router router(
            two_shard_fleet(std::make_shared<State_store>(State_store_config{dir.str()})));
        // Both shards learn, concurrently, through the one shared store.
        std::thread t1([&] {
            for (int n = 0; n < 4; ++n) router.submit("taso", variant_graph(n), gtx).wait();
        });
        std::thread t2([&] {
            for (int n = 0; n < 4; ++n) router.submit("taso", variant_graph(n), a100).wait();
        });
        t1.join();
        t2.join();
        router.drain(); // every shard snapshots into the shared store
    }

    // A brand-new fleet over the same directory answers everything warm.
    Optimization_router fleet(
        two_shard_fleet(std::make_shared<State_store>(State_store_config{dir.str()})));
    for (int n = 0; n < 4; ++n) {
        EXPECT_TRUE(fleet.submit("taso", variant_graph(n), gtx).wait().from_cache);
        EXPECT_TRUE(fleet.submit("taso", variant_graph(n), a100).wait().from_cache);
    }
    EXPECT_EQ(fleet.stats().total.cache_hits, 8U);
}

TEST(RouterPersistence, ReplacedShardStartsWarm)
{
    Scoped_dir dir;
    Optimization_router router(
        two_shard_fleet(std::make_shared<State_store>(State_store_config{dir.str()})));
    const Graph graph = quickstart_graph();
    const std::size_t target = router.route("taso", graph);
    const Optimize_result first = router.submit("taso", graph).wait();
    EXPECT_FALSE(first.from_cache);
    router.drain();

    router.replace_shard(target);
    EXPECT_EQ(router.shard(target).stats().submitted, 0U) << "genuinely a fresh server";
    const Optimize_result replay = router.submit("taso", graph).wait();
    EXPECT_TRUE(replay.from_cache) << "the replacement imported the shared store";
    EXPECT_EQ(result_fingerprint(replay), result_fingerprint(first));
}

} // namespace
} // namespace xrl
