// End-to-end semantic preservation: run the full TASO optimisation
// pipeline on a tiny variant of every zoo architecture and verify with the
// reference executor that the optimised graph computes the same function.
//
// This is the strongest property in the suite: it exercises every rewrite
// rule the search chooses, the substitution engine, shape inference and
// the executor across all eight architectures.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "ir/builder.h"
#include "ir/executor.h"
#include "models/models.h"
#include "optimizers/taso/taso_optimizer.h"
#include "rules/corpus.h"

namespace xrl {
namespace {

struct Tiny_model {
    const char* name;
    Graph graph;
    float tolerance;
};

std::vector<Tiny_model> tiny_models()
{
    std::vector<Tiny_model> models;
    models.push_back({"inception", make_inception_v3(Scale::smoke, 32), 2e-2F});
    models.push_back({"squeezenet", make_squeezenet(Scale::smoke, 32), 1e-2F});
    models.push_back({"resnext", make_resnext50(Scale::smoke, 32), 2e-2F});
    models.push_back({"resnet18", make_resnet18(Scale::smoke, 32), 2e-2F});
    models.push_back({"bert", make_bert(Scale::smoke, 8), 1e-2F});
    models.push_back({"vit", make_vit(Scale::smoke, 32), 1e-2F});
    models.push_back({"dalle", make_dalle(Scale::smoke, 8), 1e-2F});
    models.push_back({"transducer", make_transformer_transducer(Scale::smoke, 8), 1e-2F});
    return models;
}

Binding_map bindings_for(const Graph& g, Rng& rng)
{
    // Token-id inputs need valid row indices; everything else is uniform.
    Binding_map bindings;
    for (const Node_id id : g.node_ids()) {
        const Node& n = g.node(id);
        if (n.kind != Op_kind::input) continue;
        const Shape& shape = n.output_shapes.front();
        if (n.name == "token-ids") {
            Tensor ids(shape);
            for (std::int64_t i = 0; i < ids.volume(); ++i)
                ids.at(i) = static_cast<float>(rng.uniform_index(512));
            bindings.emplace(id, std::move(ids));
        } else {
            bindings.emplace(id, Tensor::random_uniform(shape, rng, -0.5F, 0.5F));
        }
    }
    return bindings;
}

class Zoo_semantics : public ::testing::TestWithParam<int> {};

TEST_P(Zoo_semantics, TasoPipelinePreservesFunction)
{
    auto models = tiny_models();
    Tiny_model& m = models[static_cast<std::size_t>(GetParam())];

    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    Taso_config config;
    config.budget = 12;
    const Taso_result result = optimise_taso(m.graph, rules, cost, config);

    Rng rng(static_cast<std::uint64_t>(GetParam()) + 90210);
    const Binding_map bindings = bindings_for(m.graph, rng);
    const auto before = execute(m.graph, bindings);
    const auto after = execute(result.best_graph, bindings);
    ASSERT_EQ(before.size(), after.size()) << m.name;
    for (std::size_t i = 0; i < before.size(); ++i) {
        ASSERT_EQ(before[i].shape(), after[i].shape()) << m.name;
        // Relative-ish tolerance: deep graphs accumulate float error and
        // their activations can be O(10).
        EXPECT_LE(Tensor::max_abs_difference(before[i], after[i]), m.tolerance) << m.name;
    }
}

std::string tiny_model_name(const ::testing::TestParamInfo<int>& info)
{
    static const char* names[] = {"inception", "squeezenet", "resnext", "resnet18",
                                  "bert",      "vit",        "dalle",   "transducer"};
    return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(TinyZoo, Zoo_semantics, ::testing::Range(0, 8), tiny_model_name);

// A deeper sweep on the cheapest model: apply *every* rule at *every* site
// and check each individual candidate numerically.
TEST(RuleSemantics, EverySiteOnTinyBert)
{
    const Graph model = make_bert(Scale::smoke, 8);
    const Rule_set rules = standard_rule_corpus();
    Rng rng(4242);
    const Binding_map bindings = bindings_for(model, rng);
    const auto reference = execute(model, bindings);

    int checked = 0;
    for (const auto& rule : rules) {
        for (const Graph& candidate : rule->apply_all(model, 4)) {
            const auto outputs = execute(candidate, bindings);
            ASSERT_EQ(outputs.size(), reference.size()) << rule->name();
            for (std::size_t i = 0; i < outputs.size(); ++i)
                EXPECT_LE(Tensor::max_abs_difference(outputs[i], reference[i]), 1e-2F)
                    << rule->name();
            ++checked;
        }
    }
    EXPECT_GT(checked, 10);
}

TEST(RuleSemantics, EverySiteOnTinyResnet)
{
    const Graph model = make_resnet18(Scale::smoke, 32);
    const Rule_set rules = standard_rule_corpus();
    Rng rng(515);
    const Binding_map bindings = bindings_for(model, rng);
    const auto reference = execute(model, bindings);

    int checked = 0;
    for (const auto& rule : rules) {
        for (const Graph& candidate : rule->apply_all(model, 2)) {
            const auto outputs = execute(candidate, bindings);
            for (std::size_t i = 0; i < outputs.size(); ++i)
                EXPECT_LE(Tensor::max_abs_difference(outputs[i], reference[i]), 2e-2F)
                    << rule->name();
            ++checked;
        }
    }
    EXPECT_GE(checked, 3);
}

} // namespace
} // namespace xrl
