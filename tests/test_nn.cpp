#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "nn/adam.h"
#include "nn/autograd.h"
#include "nn/layers.h"

namespace xrl {
namespace {

/// Central-difference gradient check: `loss_fn` rebuilds the computation
/// from the parameter on a fresh tape each call.
void check_gradients(Parameter& p, const std::function<double(Tape&, Var)>& loss_builder,
                     float tolerance = 2e-2F)
{
    // Analytic gradients.
    p.zero_grad();
    {
        Tape tape;
        const Var leaf = tape.param(p);
        Tape inner; // unused; loss_builder uses the same tape
        (void)inner;
        const double loss = loss_builder(tape, leaf);
        (void)loss;
    }

    // loss_builder already ran backward; now compare against finite
    // differences.
    const float eps = 1e-3F;
    for (std::int64_t i = 0; i < p.value.volume(); ++i) {
        const float saved = p.value.at(i);
        p.value.at(i) = saved + eps;
        Tape tp;
        const double up = loss_builder(tp, tp.param(p)); // note: backward also runs; grads polluted
        p.value.at(i) = saved - eps;
        Tape tm;
        const double down = loss_builder(tm, tm.param(p));
        p.value.at(i) = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(p.grad.at(i), numeric, tolerance)
            << "component " << i << " analytic " << p.grad.at(i) << " numeric " << numeric;
        // Note: the finite-difference passes accumulate extra gradients; we
        // only compare against the first (analytic) pass, so freeze it.
    }
}

/// Wrapper that runs backward once and returns the loss value, but only
/// accumulates gradients on the *first* invocation.
std::function<double(Tape&, Var)> once_backward(const std::function<Var(Tape&, Var)>& forward)
{
    auto first = std::make_shared<bool>(true);
    return [forward, first](Tape& tape, Var leaf) {
        const Var loss = forward(tape, leaf);
        const double value = tape.value(loss).at(0);
        if (*first) {
            tape.backward(loss);
            *first = false;
        }
        return value;
    };
}

TEST(Autograd, AddBroadcastGradient)
{
    Rng rng(1);
    Parameter p(Tensor::random_uniform({1, 4}, rng)); // bias row
    const Tensor x = Tensor::random_uniform({3, 4}, rng);
    check_gradients(p, once_backward([&x](Tape& t, Var leaf) {
                        return t.sum_all(t.mul(t.add(t.constant(x), leaf), t.constant(x)));
                    }));
}

TEST(Autograd, MatmulGradient)
{
    Rng rng(2);
    Parameter p(Tensor::random_uniform({3, 4}, rng));
    const Tensor x = Tensor::random_uniform({2, 3}, rng);
    check_gradients(p, once_backward([&x](Tape& t, Var leaf) {
                        return t.sum_all(t.square(t.matmul(t.constant(x), leaf)));
                    }));
}

TEST(Autograd, ReluAndLeakyReluGradient)
{
    Rng rng(3);
    Parameter p(Tensor::random_uniform({2, 5}, rng, -1.0F, 1.0F));
    check_gradients(p, once_backward([](Tape& t, Var leaf) {
                        return t.sum_all(t.relu(leaf));
                    }));
    Parameter q(Tensor::random_uniform({2, 5}, rng, -1.0F, 1.0F));
    check_gradients(q, once_backward([](Tape& t, Var leaf) {
                        return t.sum_all(t.leaky_relu(leaf, 0.2F));
                    }));
}

TEST(Autograd, TanhExpLogGradient)
{
    Rng rng(4);
    Parameter p(Tensor::random_uniform({2, 3}, rng, 0.2F, 1.5F));
    check_gradients(p, once_backward([](Tape& t, Var leaf) {
                        return t.sum_all(t.log(t.exp(t.tanh(leaf))));
                    }));
}

TEST(Autograd, MinimumAndClampGradient)
{
    Rng rng(5);
    Parameter p(Tensor::random_uniform({2, 3}, rng, -2.0F, 2.0F));
    const Tensor other = Tensor::random_uniform({2, 3}, rng, -2.0F, 2.0F);
    check_gradients(p, once_backward([&other](Tape& t, Var leaf) {
                        return t.sum_all(t.minimum(leaf, t.constant(other)));
                    }));
    Parameter q(Tensor::random_uniform({2, 3}, rng, -2.0F, 2.0F));
    check_gradients(q, once_backward([](Tape& t, Var leaf) {
                        return t.sum_all(t.clamp(leaf, -0.5F, 0.5F));
                    }));
}

TEST(Autograd, ConcatGatherSegmentGradient)
{
    Rng rng(6);
    Parameter p(Tensor::random_uniform({4, 3}, rng));
    const std::vector<std::int64_t> gather_idx = {0, 2, 2, 3, 1};
    const std::vector<std::int64_t> segments = {0, 1, 1, 0, 2};
    check_gradients(p, once_backward([&](Tape& t, Var leaf) {
                        const Var g = t.gather_rows(leaf, gather_idx);
                        const Var s = t.segment_sum(g, segments, 3);
                        const Var c = t.concat_cols(s, s);
                        const Var r = t.concat_rows(c, c);
                        return t.sum_all(t.square(r));
                    }));
}

TEST(Autograd, SegmentSoftmaxGradient)
{
    Rng rng(7);
    Parameter p(Tensor::random_uniform({6, 1}, rng, -1.0F, 1.0F));
    const std::vector<std::int64_t> segments = {0, 0, 1, 1, 1, 2};
    const Tensor weights = Tensor::random_uniform({6, 1}, rng);
    check_gradients(p, once_backward([&](Tape& t, Var leaf) {
                        const Var sm = t.segment_softmax(leaf, segments, 3);
                        return t.sum_all(t.mul(sm, t.constant(weights)));
                    }),
                    3e-2F);
}

TEST(Autograd, SegmentSoftmaxSumsToOnePerSegment)
{
    Tape tape;
    const Var scores = tape.constant(Tensor(Shape{5, 1}, {1.0F, 2.0F, -1.0F, 0.5F, 3.0F}));
    const Var sm = tape.segment_softmax(scores, {0, 0, 1, 1, 1}, 2);
    const Tensor& y = tape.value(sm);
    EXPECT_NEAR(y.at(0) + y.at(1), 1.0F, 1e-5F);
    EXPECT_NEAR(y.at(2) + y.at(3) + y.at(4), 1.0F, 1e-5F);
}

TEST(Autograd, PickAndMeanGradient)
{
    Rng rng(8);
    Parameter p(Tensor::random_uniform({3, 3}, rng));
    check_gradients(p, once_backward([](Tape& t, Var leaf) {
                        return t.add(t.pick(leaf, 4), t.mean_all(leaf));
                    }));
}

TEST(Autograd, GradientsAccumulateAcrossTapes)
{
    Parameter p(Tensor::full({1, 1}, 2.0F));
    for (int i = 0; i < 3; ++i) {
        Tape tape;
        const Var loss = tape.square(tape.param(p)); // d/dp = 2p = 4
        tape.backward(loss);
    }
    EXPECT_NEAR(p.grad.at(0), 12.0F, 1e-5F); // 3 accumulated passes
}

TEST(Autograd, SharedSubexpressionGetsSummedGradient)
{
    Parameter p(Tensor::full({1, 1}, 3.0F));
    Tape tape;
    const Var leaf = tape.param(p);
    const Var y = tape.add(tape.square(leaf), leaf); // y = p^2 + p, dy/dp = 2p+1
    tape.backward(tape.sum_all(y));
    EXPECT_NEAR(p.grad.at(0), 7.0F, 1e-5F);
}

TEST(Layers, LinearShapeAndBias)
{
    Rng rng(9);
    Linear layer(4, 6, rng);
    Tape tape;
    const Var x = tape.constant(Tensor::random_uniform({3, 4}, rng));
    const Var y = layer(tape, x);
    EXPECT_EQ(tape.value(y).shape(), (Shape{3, 6}));
    EXPECT_EQ(layer.parameters().size(), 2u);
}

TEST(Layers, MlpArchitecture)
{
    Rng rng(10);
    Mlp mlp(8, {256, 64}, 1, rng); // Table 4 head shape
    Tape tape;
    const Var x = tape.constant(Tensor::random_uniform({5, 8}, rng));
    const Var y = mlp(tape, x);
    EXPECT_EQ(tape.value(y).shape(), (Shape{5, 1}));
    EXPECT_EQ(mlp.parameters().size(), 6u); // 3 layers x (w, b)
}

TEST(Adam, MinimisesQuadratic)
{
    Parameter p(Tensor::full({1, 1}, 5.0F));
    Adam_config config;
    config.learning_rate = 0.1;
    config.max_grad_norm = 0.0;
    Adam adam({&p}, config);
    for (int i = 0; i < 200; ++i) {
        Tape tape;
        const Var loss = tape.square(tape.param(p));
        tape.backward(loss);
        adam.step();
    }
    EXPECT_NEAR(p.value.at(0), 0.0F, 0.05F);
}

TEST(Adam, FitsLinearRegression)
{
    Rng rng(11);
    const Tensor x = Tensor::random_uniform({32, 2}, rng);
    // Target y = x * [2, -3]^T + 1.
    Tensor target(Shape{32, 1});
    for (std::int64_t i = 0; i < 32; ++i)
        target.at(i) = 2.0F * x.at(i * 2) - 3.0F * x.at(i * 2 + 1) + 1.0F;

    Linear layer(2, 1, rng);
    Adam_config config;
    config.learning_rate = 0.05;
    Adam adam(layer.parameters(), config);
    double final_loss = 1e9;
    for (int i = 0; i < 400; ++i) {
        Tape tape;
        const Var pred = layer(tape, tape.constant(x));
        const Var err = tape.sub(pred, tape.constant(target));
        const Var loss = tape.mean_all(tape.square(err));
        final_loss = tape.value(loss).at(0);
        tape.backward(loss);
        adam.step();
    }
    EXPECT_LT(final_loss, 1e-3);
    EXPECT_NEAR(layer.weight().value.at(0), 2.0F, 0.1F);
    EXPECT_NEAR(layer.weight().value.at(1), -3.0F, 0.1F);
    EXPECT_NEAR(layer.bias().value.at(0), 1.0F, 0.1F);
}

TEST(Adam, GradientClippingBoundsNorm)
{
    Parameter p(Tensor::full({1, 1}, 1.0F));
    p.grad.at(0) = 100.0F;
    Adam_config config;
    config.learning_rate = 1.0;
    config.max_grad_norm = 0.5;
    Adam adam({&p}, config);
    adam.step();
    // First Adam step magnitude is ~lr regardless, but the clipped gradient
    // must not explode the moments; value stays finite and close.
    EXPECT_TRUE(std::isfinite(p.value.at(0)));
    EXPECT_GT(p.value.at(0), -1.5F);
}

} // namespace
} // namespace xrl
