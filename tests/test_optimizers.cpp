#include <gtest/gtest.h>

#include "core/optimizer_api.h"
#include "cost/cost_model.h"
#include "ir/builder.h"
#include "ir/executor.h"
#include "optimizers/pet/pet_optimizer.h"
#include "optimizers/taso/taso_optimizer.h"
#include "optimizers/tensat/egraph.h"
#include "optimizers/tensat/tensat_optimizer.h"
#include "rules/bespoke_rules.h"
#include "rules/corpus.h"
#include "support/check.h"
#include "optimizer_test_util.h"

namespace xrl {
namespace {

using test::api_context;

/// A small network with known optimisation opportunities: two fusable
/// activations, a Q/K/V-style triple projection, and an identity.
Graph optimisable_graph()
{
    Graph_builder b;
    const Edge x = b.input({8, 32}, "x");
    const Edge wq = b.weight({32, 16});
    const Edge wk = b.weight({32, 16});
    const Edge wv = b.weight({32, 16});
    const Edge q = b.relu(b.matmul(x, wq));
    const Edge k = b.relu(b.matmul(x, wk));
    const Edge v = b.identity(b.matmul(x, wv));
    const Edge w2 = b.weight({16, 16});
    const Edge y = b.matmul(b.add(b.add(q, k), v), w2);
    return b.finish({y});
}

/// Mapping from extracted-graph leaves back to the original graph by
/// matching shapes/order: extraction rebuilds leaves with new ids, so
/// equivalence is checked structurally here via cost + validity instead of
/// bitwise execution.
TEST(Taso, ImprovesCostOnOptimisableGraph)
{
    const Graph g = optimisable_graph();
    const Cost_model cost(gtx1080_profile());
    const Rule_set rules = standard_rule_corpus();
    const auto taso = make_optimizer("taso", api_context(rules, {{"taso.budget", 30}}));
    const Optimize_result result = taso->optimize(g, {});
    EXPECT_LT(result.final_ms, result.initial_ms);
    EXPECT_GT(result.speedup(), 1.0);
    EXPECT_NO_THROW(result.best_graph.validate());
    EXPECT_GT(result.metadata.at("candidates_generated"), 0.0);
    EXPECT_FALSE(result.rule_counts.empty());
}

TEST(Taso, OptimisedGraphPreservesSemantics)
{
    const Graph g = optimisable_graph();
    const Cost_model cost(gtx1080_profile());
    const Rule_set rules = standard_rule_corpus();
    const auto taso = make_optimizer("taso", api_context(rules, {{"taso.budget", 30}}));
    const Optimize_result result = taso->optimize(g, {});

    Rng rng(321);
    const Binding_map bindings = random_bindings(g, rng);
    const auto before = execute(g, bindings);
    const auto after = execute(result.best_graph, bindings);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_LE(Tensor::max_abs_difference(before[i], after[i]), 1e-3F);
}

TEST(Taso, RespectsBudget)
{
    const Graph g = optimisable_graph();
    const Cost_model cost(gtx1080_profile());
    const Rule_set rules = standard_rule_corpus();
    const auto taso = make_optimizer("taso", api_context(rules));
    Optimize_request request;
    request.iteration_budget = 1;
    const Optimize_result result = taso->optimize(g, request);
    EXPECT_EQ(result.steps, 1);
}

TEST(Taso, NoRulesMeansNoChange)
{
    const Graph g = optimisable_graph();
    const Cost_model cost(gtx1080_profile());
    const Rule_set empty;
    const auto taso = make_optimizer("taso", api_context(empty));
    const Optimize_result result = taso->optimize(g, {});
    EXPECT_EQ(result.final_ms, result.initial_ms);
    EXPECT_EQ(result.best_graph.canonical_hash(), g.canonical_hash());
    EXPECT_TRUE(result.rule_counts.empty());
}

TEST(Taso, GreedyGetsStuckWhereUphillMoveWins)
{
    // A graph where the only path to the win requires first applying a
    // cost-increasing rule: distribute matmul over add to expose factoring.
    // TASO's alpha=1.0 (pure greedy) cannot take it; alpha=1.5 can.
    Graph_builder b;
    const Edge a = b.input({16, 16});
    const Edge u = b.weight({16, 16});
    const Edge v = b.weight({16, 16});
    const Edge y = b.matmul(a, b.add(u, v)); // already optimal actually
    const Graph g = b.finish({y});
    const Cost_model cost(gtx1080_profile());
    const Rule_set rules = standard_rule_corpus();
    Taso_config greedy;
    greedy.alpha = 1.0;
    greedy.budget = 10;
    const Taso_result r = optimise_taso(g, rules, cost, greedy);
    // Optimal input stays optimal — sanity check that alpha=1 cannot regress.
    EXPECT_LE(r.best_cost_ms, r.initial_cost_ms + 1e-12);
}

// ---------------------------------------------------------------------------
// E-graph
// ---------------------------------------------------------------------------

TEST(Egraph, HashConsingDeduplicates)
{
    E_graph eg;
    E_node leaf;
    leaf.kind = Op_kind::input;
    leaf.leaf_id = 0;
    leaf.leaf_shape = {4, 4};
    const Eclass_id a = eg.add(leaf);
    const Eclass_id b = eg.add(leaf);
    EXPECT_EQ(a, b);
    EXPECT_EQ(eg.num_classes(), 1u);
}

TEST(Egraph, MergeUnionsClasses)
{
    E_graph eg;
    E_node x;
    x.kind = Op_kind::input;
    x.leaf_id = 0;
    x.leaf_shape = {4, 4};
    const Eclass_id cx = eg.add(x);
    E_node r;
    r.kind = Op_kind::relu;
    r.children = {cx};
    const Eclass_id cr = eg.add(r);
    E_node rr;
    rr.kind = Op_kind::relu;
    rr.children = {cr};
    const Eclass_id crr = eg.add(rr);
    EXPECT_EQ(eg.num_classes(), 3u);
    EXPECT_TRUE(eg.merge(cr, crr)); // relu(relu(x)) == relu(x)
    eg.rebuild();
    EXPECT_EQ(eg.find(cr), eg.find(crr));
    EXPECT_EQ(eg.num_classes(), 2u);
}

TEST(Egraph, CongruenceClosesUpward)
{
    // If a == b then f(a) == f(b) after rebuild.
    E_graph eg;
    E_node a;
    a.kind = Op_kind::input;
    a.leaf_id = 0;
    a.leaf_shape = {4, 4};
    E_node b;
    b.kind = Op_kind::input;
    b.leaf_id = 1;
    b.leaf_shape = {4, 4};
    const Eclass_id ca = eg.add(a);
    const Eclass_id cb = eg.add(b);
    E_node fa;
    fa.kind = Op_kind::relu;
    fa.children = {ca};
    E_node fb;
    fb.kind = Op_kind::relu;
    fb.children = {cb};
    const Eclass_id cfa = eg.add(fa);
    const Eclass_id cfb = eg.add(fb);
    EXPECT_NE(eg.find(cfa), eg.find(cfb));
    eg.merge(ca, cb);
    eg.rebuild();
    EXPECT_EQ(eg.find(cfa), eg.find(cfb));
}

TEST(Egraph, MergeRejectsShapeMismatch)
{
    E_graph eg;
    E_node a;
    a.kind = Op_kind::input;
    a.leaf_id = 0;
    a.leaf_shape = {4, 4};
    E_node b;
    b.kind = Op_kind::input;
    b.leaf_id = 1;
    b.leaf_shape = {2, 8};
    const Eclass_id ca = eg.add(a);
    const Eclass_id cb = eg.add(b);
    EXPECT_THROW(eg.merge(ca, cb), Contract_violation);
}

TEST(Egraph, EncodeRoundTripsThroughExtraction)
{
    const Graph g = optimisable_graph();
    const Egraph_encoding enc = encode_graph(g);
    EXPECT_EQ(enc.roots.size(), g.outputs().size());
    const Cost_model cost(gtx1080_profile());
    const auto extracted = extract_best(enc.egraph, enc.roots, cost);
    ASSERT_TRUE(extracted.has_value());
    // Without rewrites extraction returns a graph of identical cost.
    EXPECT_NEAR(cost.graph_cost_ms(*extracted), cost.graph_cost_ms(g), 1e-9);
}

TEST(Egraph, EncodeHandlesSplitViaProjections)
{
    Graph_builder b;
    const Edge x = b.input({2, 6});
    const auto parts = b.split(x, 1, {2, 4});
    const Graph g = b.finish({b.relu(parts[0]), b.tanh(parts[1])});
    const Egraph_encoding enc = encode_graph(g);
    const Cost_model cost(gtx1080_profile());
    const auto extracted = extract_best(enc.egraph, enc.roots, cost);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_EQ(extracted->outputs().size(), 2u);
    // The split survives extraction.
    int splits = 0;
    for (const Node_id id : extracted->node_ids())
        if (extracted->node(id).kind == Op_kind::split) ++splits;
    EXPECT_EQ(splits, 1);
}

TEST(Egraph, RewriteThenExtractImproves)
{
    // relu(matmul) --fuse--> matmul+relu: after applying the fusion pattern
    // as an e-graph rewrite, extraction picks the fused kernel.
    Graph_builder b;
    const Edge x = b.input({8, 32});
    const Edge w = b.weight({32, 16});
    const Graph g = b.finish({b.relu(b.matmul(x, w))});
    Egraph_encoding enc = encode_graph(g);

    auto patterns = curated_patterns();
    const auto it = std::find_if(patterns.begin(), patterns.end(),
                                 [](const Pattern& p) { return p.name == "fuse-matmul-relu"; });
    ASSERT_NE(it, patterns.end());
    ASSERT_TRUE(is_egraph_compatible(*it));
    const int unions = apply_pattern_to_egraph(enc.egraph, *it, 100);
    EXPECT_GE(unions, 1);
    enc.egraph.rebuild();

    const Cost_model cost(gtx1080_profile());
    const auto extracted = extract_best(enc.egraph, enc.roots, cost);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_LT(cost.graph_cost_ms(*extracted), cost.graph_cost_ms(g));
    // The fused form has one fewer kernel.
    bool found_fused = false;
    for (const Node_id id : extracted->node_ids())
        if (extracted->node(id).kind == Op_kind::matmul &&
            extracted->node(id).params.activation == Activation::relu)
            found_fused = true;
    EXPECT_TRUE(found_fused);
}

TEST(Tensat, OptimisesAndValidates)
{
    const Graph g = optimisable_graph();
    const Cost_model cost(gtx1080_profile());
    const Rule_set rules = standard_rule_corpus();
    const auto tensat =
        make_optimizer("tensat", api_context(rules, {{"tensat.max_iterations", 4}}));
    const Optimize_result result = tensat->optimize(g, {});
    EXPECT_LE(result.final_ms, result.initial_ms);
    EXPECT_NO_THROW(result.best_graph.validate());
    EXPECT_GT(result.metadata.at("egraph_nodes"), 0.0);
}

TEST(Tensat, MultiPatternLimitGovernsQkvMerging)
{
    // Three shared-LHS matmuls need two multi-pattern applications to fuse
    // fully; k=1 leaves at least two matmuls, k=2 reaches one.
    Graph_builder b;
    const Edge x = b.input({8, 32});
    const Edge wq = b.weight({32, 16});
    const Edge wk = b.weight({32, 16});
    const Edge wv = b.weight({32, 16});
    const Graph g = b.finish({b.matmul(x, wq), b.matmul(x, wk), b.matmul(x, wv)});

    Rule_set multi;
    multi.push_back(make_merge_matmul_shared_lhs_rule());
    const Cost_model cost(gtx1080_profile());

    auto count_matmuls = [](const Graph& graph) {
        int count = 0;
        for (const Node_id id : graph.node_ids())
            if (graph.node(id).kind == Op_kind::matmul) ++count;
        return count;
    };

    Tensat_config k1;
    k1.max_iterations = 2;
    k1.multi_pattern_limit_k = 1;
    Rule_set multi1;
    multi1.push_back(make_merge_matmul_shared_lhs_rule());
    const Tensat_result r1 = optimise_tensat(g, {}, multi1, cost, k1);

    Tensat_config k2 = k1;
    k2.multi_pattern_limit_k = 2;
    Rule_set multi2;
    multi2.push_back(make_merge_matmul_shared_lhs_rule());
    const Tensat_result r2 = optimise_tensat(g, {}, multi2, cost, k2);

    EXPECT_EQ(count_matmuls(r1.best_graph), 2);
    EXPECT_EQ(count_matmuls(r2.best_graph), 1);
    EXPECT_LT(r2.best_cost_ms, r1.best_cost_ms);
}

TEST(Tensat, SaturatesOnTinyGraph)
{
    Graph_builder b;
    const Edge x = b.input({4, 4});
    const Graph g = b.finish({b.relu(b.relu(x))});
    const Cost_model cost(gtx1080_profile());
    Tensat_config config;
    config.max_iterations = 8;
    std::vector<Pattern> patterns;
    for (Pattern& p : curated_patterns())
        if (p.name == "relu-relu-elim") patterns.push_back(std::move(p));
    const Tensat_result result = optimise_tensat(g, patterns, Rule_set{}, cost, config);
    EXPECT_TRUE(result.saturated);
    // relu(relu(x)) collapsed to relu(x).
    int relus = 0;
    for (const Node_id id : result.best_graph.node_ids())
        if (result.best_graph.node(id).kind == Op_kind::relu) ++relus;
    EXPECT_EQ(relus, 1);
}

// ---------------------------------------------------------------------------
// PET
// ---------------------------------------------------------------------------

TEST(Pet, CostModelIgnoresElementwise)
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 16, 16});
    const Edge w = b.weight({8, 8, 3, 3});
    const Edge c = b.conv2d(x, w, 1, 1);
    const Graph plain = b.finish({c});

    Graph_builder b2;
    const Edge x2 = b2.input({1, 8, 16, 16});
    const Edge w2 = b2.weight({8, 8, 3, 3});
    const Edge c2 = b2.conv2d(x2, w2, 1, 1);
    const Graph with_relu = b2.finish({b2.relu(b2.relu(c2))});

    const Cost_model cost(gtx1080_profile());
    EXPECT_NEAR(pet_graph_cost_ms(cost, plain), pet_graph_cost_ms(cost, with_relu), 1e-12);
    EXPECT_LT(cost.graph_cost_ms(plain), cost.graph_cost_ms(with_relu));
}

TEST(Pet, SpatialSplitPreservesSemantics)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 8, 8}, "x");
    const Edge w = b.weight({4, 3, 3, 3});
    const Graph g = b.finish({b.conv2d(x, w, 1, 1)});

    const auto rule = make_pet_spatial_split_rule();
    const auto candidates = rule->apply_all(g);
    ASSERT_EQ(candidates.size(), 1u);

    Rng rng(777);
    const Binding_map bindings = random_bindings(g, rng);
    const auto before = execute(g, bindings);
    const auto after = execute(candidates.front(), bindings);
    EXPECT_LE(Tensor::max_abs_difference(before[0], after[0]), 1e-4F);
}

TEST(Pet, SpatialSplitSkipsStridedAndTinyConvs)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 8, 8});
    const Edge w = b.weight({4, 3, 3, 3});
    const Graph strided = b.finish({b.conv2d(x, w, 2, 1)});
    EXPECT_TRUE(make_pet_spatial_split_rule()->apply_all(strided).empty());

    Graph_builder b2;
    const Edge x2 = b2.input({1, 3, 3, 3});
    const Edge w2 = b2.weight({4, 3, 3, 3});
    const Graph tiny = b2.finish({b2.conv2d(x2, w2, 1, 1)});
    EXPECT_TRUE(make_pet_spatial_split_rule()->apply_all(tiny).empty());
}

TEST(Pet, OptimiserRunsAndReportsBothCosts)
{
    const Graph g = optimisable_graph();
    const Cost_model cost(gtx1080_profile());
    const Rule_set rules = standard_rule_corpus();
    const auto pet = make_optimizer("pet", api_context(rules, {{"pet.budget", 15}}));
    const Optimize_result result = pet->optimize(g, {});
    EXPECT_NO_THROW(result.best_graph.validate());
    // The unified latency fields report the honest cost model; PET's own
    // blind estimate rides along as metadata and never exceeds it.
    EXPECT_GT(result.final_ms, 0.0);
    EXPECT_EQ(result.final_ms, result.metadata.at("honest_ms"));
    EXPECT_LE(result.metadata.at("pet_believed_ms"), result.final_ms + 1e-12);
}

} // namespace
} // namespace xrl
