#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/device.h"
#include "cost/e2e_simulator.h"
#include "ir/builder.h"

namespace xrl {
namespace {

Graph conv_relu_graph()
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 16, 16});
    const Edge w = b.weight({8, 8, 3, 3});
    return b.finish({b.relu(b.conv2d(x, w, 1, 1))});
}

TEST(DeviceProfile, EfficienciesAreFractions)
{
    const Device_profile dev = gtx1080_profile();
    for (int i = 0; i < op_kind_count(); ++i) {
        const double e = dev.efficiency(static_cast<Op_kind>(i));
        EXPECT_GT(e, 0.0);
        EXPECT_LE(e, 1.0);
    }
}

TEST(NodeFlops, MatmulAndConvFormulas)
{
    Graph_builder b;
    const Edge a = b.input({4, 8});
    const Edge w = b.weight({8, 16});
    const Edge m = b.matmul(a, w);
    const Edge x = b.input({1, 3, 8, 8});
    const Edge k = b.weight({6, 3, 3, 3});
    const Edge c = b.conv2d(x, k, 1, 1);
    const Graph g = b.finish({m, c});
    EXPECT_EQ(node_flops(g, m.node), 2 * 4 * 16 * 8);
    EXPECT_EQ(node_flops(g, c.node), 2 * (1 * 6 * 8 * 8) * 3 * 3 * 3);
}

TEST(NodeFlops, FusedActivationAddsElementwiseWork)
{
    Graph_builder b;
    const Edge a = b.input({4, 8});
    const Edge w = b.weight({8, 16});
    const Edge plain = b.matmul(a, w);
    const Edge fused = b.matmul(a, w, Activation::relu);
    const Graph g = b.finish({plain, fused});
    EXPECT_EQ(node_flops(g, fused.node), node_flops(g, plain.node) + 4 * 16);
}

TEST(NodeBytes, CountsInputsAndOutputs)
{
    Graph_builder b;
    const Edge x = b.input({2, 8});
    const Edge y = b.relu(x);
    const Graph g = b.finish({y});
    EXPECT_EQ(node_bytes(g, y.node), 4 * (16 + 16));
}

TEST(FreeOps, ViewsCostNothing)
{
    Graph_builder b;
    const Edge x = b.input({2, 8});
    const Edge r = b.reshape(x, {4, 4});
    const Edge i = b.identity(x);
    const Graph g = b.finish({r, i});
    const Cost_model cost(gtx1080_profile());
    EXPECT_EQ(cost.op_cost_ms(g, r.node), 0.0);
    EXPECT_EQ(cost.op_cost_ms(g, i.node), 0.0);
}

TEST(CostModel, OpCostIncludesLaunchOverhead)
{
    const Graph g = conv_relu_graph();
    const Cost_model cost(gtx1080_profile());
    for (const Node_id id : g.node_ids()) {
        if (is_free_op(g.node(id).kind)) continue;
        if (is_source(g.node(id).kind)) continue;
        EXPECT_GE(cost.op_cost_ms(g, id), gtx1080_profile().kernel_launch_ms);
    }
}

TEST(CostModel, GraphCostIsSumOfOpCosts)
{
    const Graph g = conv_relu_graph();
    const Cost_model cost(gtx1080_profile());
    double sum = 0.0;
    for (const Node_id id : g.node_ids()) sum += cost.op_cost_ms(g, id);
    EXPECT_NEAR(cost.graph_cost_ms(g), sum, 1e-12);
}

TEST(CostModel, IgnoresDeadNodes)
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 16, 16});
    const Edge w = b.weight({8, 8, 3, 3});
    const Edge used = b.conv2d(x, w, 1, 1);
    b.conv2d(x, w, 1, 1, Activation::relu); // dead: not an output
    const Graph g = b.finish({used});
    Graph_builder b2;
    const Edge x2 = b2.input({1, 8, 16, 16});
    const Edge w2 = b2.weight({8, 8, 3, 3});
    const Graph g2 = b2.finish({b2.conv2d(x2, w2, 1, 1)});
    const Cost_model cost(gtx1080_profile());
    EXPECT_NEAR(cost.graph_cost_ms(g), cost.graph_cost_ms(g2), 1e-12);
}

TEST(CostModel, FusionReducesCost)
{
    // conv+relu as two kernels costs more than one fused kernel.
    Graph_builder b1;
    const Edge x1 = b1.input({1, 8, 16, 16});
    const Edge w1 = b1.weight({8, 8, 3, 3});
    const Graph two_kernels = b1.finish({b1.relu(b1.conv2d(x1, w1, 1, 1))});
    Graph_builder b2;
    const Edge x2 = b2.input({1, 8, 16, 16});
    const Edge w2 = b2.weight({8, 8, 3, 3});
    const Graph fused = b2.finish({b2.conv2d(x2, w2, 1, 1, Activation::relu)});
    const Cost_model cost(gtx1080_profile());
    EXPECT_LT(cost.graph_cost_ms(fused), cost.graph_cost_ms(two_kernels));
}

TEST(E2e, NoiselessIsDeterministic)
{
    const Graph g = conv_relu_graph();
    E2e_simulator sim(gtx1080_profile(), 1);
    EXPECT_EQ(sim.noiseless_ms(g), sim.noiseless_ms(g));
}

TEST(E2e, MeasurementsAreNoisyButNearNoiseless)
{
    const Graph g = conv_relu_graph();
    E2e_simulator sim(gtx1080_profile(), 1);
    const double base = sim.noiseless_ms(g);
    double min_m = 1e30;
    double max_m = 0.0;
    for (int i = 0; i < 50; ++i) {
        const double m = sim.measure_ms(g);
        min_m = std::min(min_m, m);
        max_m = std::max(max_m, m);
        EXPECT_NEAR(m, base, base * 0.10);
    }
    EXPECT_LT(min_m, max_m); // actually noisy
}

TEST(E2e, RepeatedMeasurementStatsAreSane)
{
    const Graph g = conv_relu_graph();
    E2e_simulator sim(gtx1080_profile(), 2);
    const Latency_stats stats = sim.measure_repeated(g, 5);
    EXPECT_EQ(stats.repeats, 5);
    EXPECT_NEAR(stats.mean_ms, sim.noiseless_ms(g), sim.noiseless_ms(g) * 0.05);
    EXPECT_GE(stats.std_ms, 0.0);
}

TEST(E2e, ConstantFoldsWeightOnlySubgraphs)
{
    // w' = w * 2 is weight-only: folded offline; the runtime schedule is
    // identical to using w directly.
    Graph_builder b;
    const Edge x = b.input({4, 8});
    const Edge w = b.weight({8, 16});
    const Edge w_scaled = b.scale(w, 2.0F);
    const Graph g = b.finish({b.matmul(x, w_scaled)});
    E2e_simulator sim(gtx1080_profile(), 3);
    const E2e_breakdown bd = sim.analyse(g);
    EXPECT_EQ(bd.nodes_folded, 1);
    EXPECT_EQ(bd.kernels_launched, 1); // just the matmul

    Graph_builder b2;
    const Edge x2 = b2.input({4, 8});
    const Edge w2 = b2.weight({8, 16});
    const Graph direct = b2.finish({b2.matmul(x2, w2)});
    EXPECT_NEAR(sim.noiseless_ms(g), sim.noiseless_ms(direct), 1e-12);
}

TEST(E2e, CostModelDoesNotSeeConstantFolding)
{
    Graph_builder b;
    const Edge x = b.input({4, 8});
    const Edge w = b.weight({8, 16});
    const Edge w_scaled = b.scale(w, 2.0F);
    const Graph g = b.finish({b.matmul(x, w_scaled)});
    const Cost_model cost(gtx1080_profile());
    E2e_simulator sim(gtx1080_profile(), 4);
    // The cost model charges for the scale kernel; the runtime folds it.
    EXPECT_GT(cost.graph_cost_ms(g), sim.noiseless_ms(g));
}

TEST(E2e, FusesSingleConsumerElementwiseChains)
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 16, 16});
    const Edge w = b.weight({8, 8, 3, 3});
    const Edge y = b.tanh(b.relu(b.conv2d(x, w, 1, 1)));
    const Graph g = b.finish({y});
    E2e_simulator sim(gtx1080_profile(), 5);
    const E2e_breakdown bd = sim.analyse(g);
    EXPECT_EQ(bd.kernels_fused, 2);   // relu and tanh ride the conv kernel
    EXPECT_EQ(bd.kernels_launched, 1);
}

TEST(E2e, DoesNotFuseSharedIntermediates)
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 16, 16});
    const Edge w = b.weight({8, 8, 3, 3});
    const Edge c = b.conv2d(x, w, 1, 1);
    const Graph g = b.finish({b.relu(c), b.tanh(c)}); // conv has 2 consumers
    E2e_simulator sim(gtx1080_profile(), 6);
    const E2e_breakdown bd = sim.analyse(g);
    EXPECT_EQ(bd.kernels_fused, 0);
    EXPECT_EQ(bd.kernels_launched, 3);
}

TEST(E2e, FusesBiasAddWithStaticOperand)
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 16, 16});
    const Edge w = b.weight({8, 8, 3, 3});
    const Edge bias = b.weight({1, 8, 1, 1});
    const Edge y = b.add(b.conv2d(x, w, 1, 1), bias);
    const Graph g = b.finish({y});
    E2e_simulator sim(gtx1080_profile(), 7);
    const E2e_breakdown bd = sim.analyse(g);
    EXPECT_EQ(bd.kernels_fused, 1);
    EXPECT_EQ(bd.kernels_launched, 1);
}

TEST(E2e, SchedulerOverheadGrowsWithKernelCount)
{
    // Same compute split across many kernels costs more end-to-end.
    Graph_builder b1;
    const Edge x1 = b1.input({1, 8, 16, 16});
    const Edge w1 = b1.weight({32, 8, 3, 3});
    const Graph one_conv = b1.finish({b1.conv2d(x1, w1, 1, 1)});

    Graph_builder b2;
    const Edge x2 = b2.input({1, 8, 16, 16});
    std::vector<Edge> branches;
    for (int i = 0; i < 8; ++i) {
        const Edge w = b2.weight({4, 8, 3, 3});
        branches.push_back(b2.conv2d(x2, w, 1, 1));
    }
    const Graph many_convs = b2.finish({b2.concat(1, branches)});

    E2e_simulator sim(gtx1080_profile(), 8);
    const E2e_breakdown bd1 = sim.analyse(one_conv);
    const E2e_breakdown bd2 = sim.analyse(many_convs);
    EXPECT_GT(bd2.kernels_launched, bd1.kernels_launched);
    EXPECT_GT(bd2.scheduler_ms, bd1.scheduler_ms);
    EXPECT_GT(bd2.total_ms, bd1.total_ms);
}

TEST(E2e, DiscrepancyDirectionDependsOnStructure)
{
    const Cost_model cost(gtx1080_profile());
    E2e_simulator sim(gtx1080_profile(), 9);

    // Many-kernel graph: E2E > cost model (scheduler overhead dominates).
    Graph_builder b1;
    const Edge x1 = b1.input({1, 16, 8, 8});
    std::vector<Edge> branches;
    for (int i = 0; i < 16; ++i) {
        const Edge w = b1.weight({2, 16, 1, 1});
        branches.push_back(b1.conv2d(x1, w));
    }
    const Graph branchy = b1.finish({b1.concat(1, branches)});
    EXPECT_GT(sim.noiseless_ms(branchy), cost.graph_cost_ms(branchy));

    // Elementwise-chain graph: E2E < cost model (runtime fusion).
    Graph_builder b2;
    const Edge x2 = b2.input({64, 512});
    const Edge w2 = b2.weight({512, 512});
    const Graph chainy = b2.finish({b2.tanh(b2.gelu(b2.relu(b2.matmul(x2, w2))))});
    EXPECT_LT(sim.noiseless_ms(chainy), cost.graph_cost_ms(chainy));
}

TEST(E2e, A100ProfileIsFaster)
{
    const Graph g = conv_relu_graph();
    E2e_simulator slow(gtx1080_profile(), 10);
    E2e_simulator fast(a100_profile(), 10);
    EXPECT_LT(fast.noiseless_ms(g), slow.noiseless_ms(g));
}

} // namespace
} // namespace xrl
