// The fleet resilience layer end to end: deterministic fault plans, the
// per-shard circuit breaker, live membership changes (add / remove /
// replace) under concurrent traffic with zero lost or duplicated jobs,
// rendezvous key stability across membership changes, client retry with
// idempotent resubmission after a lost reply, and the retryable-error
// taxonomy both sides of the wire agree on. Runs in CI's chaos-smoke
// ThreadSanitizer job alongside test_net.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/optimization_service.h"
#include "core/result_serial.h"
#include "ir/builder.h"
#include "net/client.h"
#include "net/connection.h"
#include "net/daemon.h"
#include "net/protocol.h"
#include "serve/router.h"
#include "serve/shard_health.h"
#include "support/fault_plan.h"

namespace xrl {
namespace {

// ---------------------------------------------------------------------------
// Helpers (test_net idioms)
// ---------------------------------------------------------------------------

/// The quickstart graph (paper Figure 1): y = relu(x.w + b).
Graph quickstart_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

/// Structurally distinct variants (different widths => different hashes).
Graph variant_graph(int n)
{
    Graph_builder b;
    const Edge x = b.input({4, 24 + n}, "x");
    const Edge w = b.weight({24 + n, 12});
    return b.finish({b.relu(b.matmul(x, w))});
}

/// Smoke-scale budgets, matching the daemon binary's --smoke.
Service_config smoke_service()
{
    Service_config config;
    config.backend_options["taso.budget"] = 15;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 1;
    config.backend_options["xrlflow.max_steps"] = 4;
    config.backend_options["xrlflow.hidden_dim"] = 8;
    config.backend_options["xrlflow.max_candidates"] = 15;
    return config;
}

Server_config smoke_server()
{
    Server_config config;
    config.service = smoke_service();
    return config;
}

/// N identical affinity-free shards: all routing is pure rendezvous.
Router_config uniform_fleet(std::size_t shards)
{
    Router_config config;
    config.shards.resize(shards);
    for (Shard_config& shard : config.shards) shard.server = smoke_server();
    return config;
}

Daemon_config smoke_daemon(std::size_t shards = 1)
{
    Daemon_config config;
    config.router.shards.resize(shards);
    for (Shard_config& shard : config.router.shards) shard.server.service = smoke_service();
    config.timeouts.connect_seconds = 5.0;
    config.timeouts.read_seconds = 10.0;
    config.timeouts.write_seconds = 10.0;
    return config;
}

Client_config client_for(const Daemon& daemon)
{
    Client_config config;
    config.host = daemon.host();
    config.port = daemon.port();
    config.timeouts.connect_seconds = 5.0;
    config.timeouts.read_seconds = 10.0;
    config.timeouts.write_seconds = 10.0;
    return config;
}

/// Bit-exact comparison form: only the wall-clock measurements (and the
/// cache marker) may differ between two runs of the same deterministic
/// search.
std::string comparable_bytes(Optimize_result result)
{
    result.wall_seconds = 0.0;
    result.from_cache = false;
    result.metadata.erase("training_seconds");
    return result_to_bytes(result);
}

/// An injectable breaker clock the test advances by hand.
struct Fake_clock {
    std::shared_ptr<std::atomic<std::int64_t>> ms =
        std::make_shared<std::atomic<std::int64_t>>(0);

    std::function<std::chrono::steady_clock::time_point()> fn() const
    {
        auto shared = ms;
        return [shared] {
            return std::chrono::steady_clock::time_point(std::chrono::milliseconds(shared->load()));
        };
    }

    void advance_seconds(std::int64_t seconds) { ms->fetch_add(seconds * 1000); }
};

/// The breaker hears a terminal state from the completion hook just after
/// waiters wake; spin briefly until the router's snapshot reflects it.
Breaker_state settled_state(Optimization_router& router, std::size_t index,
                            Breaker_state wanted)
{
    for (int spin = 0; spin < 1000; ++spin) {
        const Breaker_state state = router.stats().health[index].state;
        if (state == wanted) return state;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return router.stats().health[index].state;
}

// ---------------------------------------------------------------------------
// Fault plans: deterministic by construction
// ---------------------------------------------------------------------------

TEST(FaultPlan, RulesMatchByAbsoluteEventIndex)
{
    Fault_plan plan;
    plan.add("shard/0", {.begin = 2, .count = 2, .action = Fault_action::fail});

    std::vector<Fault_action> seen;
    for (int i = 0; i < 6; ++i) seen.push_back(plan.next("shard/0"));
    const std::vector<Fault_action> expected{Fault_action::none, Fault_action::none,
                                             Fault_action::fail, Fault_action::fail,
                                             Fault_action::none, Fault_action::none};
    EXPECT_EQ(seen, expected);
    EXPECT_EQ(plan.events("shard/0"), 6U);
    EXPECT_EQ(plan.injected("shard/0"), 2U);
    EXPECT_EQ(plan.events("daemon/send"), 0U); // sites are independent
}

TEST(FaultPlan, FirstMatchWinsAndHealedSitesKeepCounting)
{
    Fault_plan plan;
    plan.add("daemon/send",
             {.begin = 0, .count = 1, .action = Fault_action::delay, .delay_seconds = 0.25});
    plan.add("daemon/send", {.begin = 0, .count = 2, .action = Fault_action::drop});

    double delay = 0.0;
    EXPECT_EQ(plan.next("daemon/send", &delay), Fault_action::delay); // first rule wins event 0
    EXPECT_EQ(delay, 0.25);
    EXPECT_EQ(plan.next("daemon/send"), Fault_action::drop); // second rule still covers event 1

    plan.clear("daemon/send");
    EXPECT_EQ(plan.next("daemon/send"), Fault_action::none); // healed: event 2 passes

    // Rule indices stay absolute across the heal: event 3 is next.
    plan.add("daemon/send", {.begin = 3, .count = 1, .action = Fault_action::corrupt});
    EXPECT_EQ(plan.next("daemon/send"), Fault_action::corrupt);
    EXPECT_EQ(plan.injected("daemon/send"), 3U);
}

// ---------------------------------------------------------------------------
// Shard_health: the circuit breaker state machine
// ---------------------------------------------------------------------------

TEST(ShardHealth, OnlyConsecutiveFailuresTrip)
{
    Fake_clock clock;
    Shard_health health({.failure_threshold = 3, .open_seconds = 5.0, .clock = clock.fn()});

    health.record_failure();
    health.record_failure();
    health.record_success(); // a flaky-but-working shard stays in rotation
    EXPECT_EQ(health.state(), Breaker_state::closed);
    EXPECT_EQ(health.snapshot().consecutive_failures, 0U);

    health.record_failure();
    health.record_failure();
    EXPECT_EQ(health.state(), Breaker_state::closed);
    health.record_failure();
    EXPECT_EQ(health.state(), Breaker_state::open);
    EXPECT_EQ(health.snapshot().trips, 1U);
    EXPECT_FALSE(health.try_admit_probe()); // open shards take no traffic
}

TEST(ShardHealth, OpenWindowAdmitsProbesAndConsecutiveSuccessesClose)
{
    Fake_clock clock;
    Shard_health health(
        {.failure_threshold = 1, .open_seconds = 5.0, .half_open_probes = 2, .clock = clock.fn()});
    health.record_failure();
    EXPECT_EQ(health.state(), Breaker_state::open);

    clock.advance_seconds(6);
    EXPECT_TRUE(health.try_admit_probe()); // observation advances open -> half_open
    EXPECT_TRUE(health.try_admit_probe());
    EXPECT_FALSE(health.try_admit_probe()); // probe budget spent
    EXPECT_EQ(health.state(), Breaker_state::half_open);

    health.record_success();
    EXPECT_EQ(health.state(), Breaker_state::half_open); // one of two
    health.record_success();
    EXPECT_EQ(health.state(), Breaker_state::closed);
    EXPECT_EQ(health.snapshot().probes, 2U);
}

TEST(ShardHealth, FailedProbeReopensAndRestartsTheWindow)
{
    Fake_clock clock;
    Shard_health health(
        {.failure_threshold = 1, .open_seconds = 5.0, .half_open_probes = 2, .clock = clock.fn()});
    health.record_failure();
    clock.advance_seconds(6);
    ASSERT_TRUE(health.try_admit_probe());

    health.record_failure(); // the probe failed: trust is not re-earned
    EXPECT_EQ(health.state(), Breaker_state::open);
    EXPECT_EQ(health.snapshot().trips, 2U);

    clock.advance_seconds(4); // the window restarted from the re-trip
    EXPECT_EQ(health.state(), Breaker_state::open);
    clock.advance_seconds(2);
    EXPECT_EQ(health.state(), Breaker_state::half_open);
}

TEST(ShardHealth, LateOutcomesFromPreTripJobsDoNotDisturbAnOpenWindow)
{
    Fake_clock clock;
    Shard_health health({.failure_threshold = 1, .open_seconds = 5.0, .clock = clock.fn()});
    health.record_failure();
    ASSERT_EQ(health.state(), Breaker_state::open);

    clock.advance_seconds(3);
    health.record_failure(); // a straggler from before the trip
    health.record_success(); // likewise; only half-open probes close a breaker
    EXPECT_EQ(health.state(), Breaker_state::open);

    clock.advance_seconds(2); // 5 s from the *original* trip: schedule undisturbed
    EXPECT_EQ(health.state(), Breaker_state::half_open);
}

// ---------------------------------------------------------------------------
// The retryable-error contract
// ---------------------------------------------------------------------------

TEST(Retryable, TableMatchesTheDocumentedContract)
{
    using Code = Protocol_error_code;
    for (const Code code : {Code::bad_magic, Code::bad_checksum, Code::truncated, Code::busy,
                            Code::shutting_down, Code::io})
        EXPECT_TRUE(retryable(code)) << to_string(code);
    for (const Code code : {Code::frame_too_large, Code::unsupported_version, Code::unknown_type,
                            Code::bad_payload, Code::invalid_request, Code::unknown_job})
        EXPECT_FALSE(retryable(code)) << to_string(code);

    // Protocol_error defaults its verdict from the table; a remote error
    // may carry the daemon's explicit override.
    EXPECT_TRUE(Protocol_error(Code::io, "x").retryable());
    EXPECT_FALSE(Protocol_error(Code::invalid_request, "x").retryable());
    EXPECT_TRUE(Protocol_error(Code::invalid_request, "x", true, true).retryable());
}

TEST(WireCodec, ResilienceFieldsRoundTrip)
{
    Submit submit;
    submit.backend = "taso";
    submit.graph = quickstart_graph();
    submit.request_key = 0x1122334455667788ULL;
    EXPECT_EQ(decode_submit(encode_submit(submit)).request_key, submit.request_key);

    Batch_submit batch;
    batch.entries.resize(1);
    batch.entries[0].backend = "taso";
    batch.entries[0].graph = quickstart_graph();
    batch.request_key = 99;
    EXPECT_EQ(decode_batch_submit(encode_batch_submit(batch)).request_key, 99U);

    Hello_ok hello;
    hello.negotiated_version = 1;
    hello.server_protocol_version = 7; // a daemon newer than this client
    hello.server_name = "xrlflowd";
    EXPECT_EQ(decode_hello_ok(encode_hello_ok(hello)).server_protocol_version, 7);

    Error_pdu error;
    error.code = Protocol_error_code::busy;
    error.message = "try later";
    error.retryable = true;
    const Error_pdu error_back = decode_error(encode_error(error));
    EXPECT_EQ(error_back.code, Protocol_error_code::busy);
    EXPECT_EQ(error_back.message, "try later");
    EXPECT_TRUE(error_back.retryable);

    Stats_ok stats;
    stats.router.submitted = 5;
    stats.router.probe_routed = 2;
    stats.router.breaker_rerouted = 3;
    stats.router.routed_to = {4, 1};
    Shard_health_snapshot sick;
    sick.stable_id = 9;
    sick.state = Breaker_state::half_open;
    sick.draining = true;
    sick.consecutive_failures = 4;
    sick.successes = 10;
    sick.failures = 6;
    sick.trips = 2;
    sick.probes = 3;
    stats.router.health = {Shard_health_snapshot{}, sick};
    stats.daemon.jobs_deduplicated = 11;

    const Stats_ok back = decode_stats_ok(encode_stats_ok(stats));
    EXPECT_EQ(back.router.probe_routed, 2U);
    EXPECT_EQ(back.router.breaker_rerouted, 3U);
    EXPECT_EQ(back.daemon.jobs_deduplicated, 11U);
    ASSERT_EQ(back.router.health.size(), 2U);
    EXPECT_EQ(back.router.health[0].state, Breaker_state::closed);
    EXPECT_EQ(back.router.health[1].stable_id, 9U);
    EXPECT_EQ(back.router.health[1].state, Breaker_state::half_open);
    EXPECT_TRUE(back.router.health[1].draining);
    EXPECT_EQ(back.router.health[1].consecutive_failures, 4U);
    EXPECT_EQ(back.router.health[1].successes, 10U);
    EXPECT_EQ(back.router.health[1].failures, 6U);
    EXPECT_EQ(back.router.health[1].trips, 2U);
    EXPECT_EQ(back.router.health[1].probes, 3U);
}

// ---------------------------------------------------------------------------
// Live membership: rendezvous key stability
// ---------------------------------------------------------------------------

TEST(RouterMembership, RemoveRespreadsOnlyTheRemovedShardsKeys)
{
    Optimization_router router(uniform_fleet(3));

    constexpr int keys = 24;
    std::vector<std::size_t> before;
    for (int n = 0; n < keys; ++n) before.push_back(router.route("taso", variant_graph(n)));
    // The spread must actually cover the fleet for the test to mean much.
    for (std::size_t shard = 0; shard < 3; ++shard)
        EXPECT_NE(std::count(before.begin(), before.end(), shard), 0) << shard;

    router.remove_shard(1);
    ASSERT_EQ(router.shard_count(), 2U);
    for (int n = 0; n < keys; ++n) {
        const std::size_t now = router.route("taso", variant_graph(n));
        if (before[n] == 0)
            EXPECT_EQ(now, 0U) << "key " << n << " moved off a surviving shard";
        else if (before[n] == 2)
            EXPECT_EQ(now, 1U) << "key " << n << " moved off a surviving shard";
        else
            EXPECT_LT(now, 2U); // the removed shard's keys re-spread anywhere
    }
}

TEST(RouterMembership, AddStealsOnlyTheKeysTheNewShardWins)
{
    Optimization_router router(uniform_fleet(2));

    constexpr int keys = 24;
    std::vector<std::size_t> before;
    for (int n = 0; n < keys; ++n) before.push_back(router.route("taso", variant_graph(n)));

    Shard_config grown;
    grown.server = smoke_server();
    const std::size_t index = router.add_shard(std::move(grown));
    EXPECT_EQ(index, 2U);
    ASSERT_EQ(router.shard_count(), 3U);

    int stolen = 0;
    for (int n = 0; n < keys; ++n) {
        const std::size_t now = router.route("taso", variant_graph(n));
        if (now == index)
            ++stolen;
        else
            EXPECT_EQ(now, before[n]) << "key " << n << " moved between incumbent shards";
    }
    EXPECT_GT(stolen, 0); // the new shard takes a share of the keyspace
    EXPECT_LT(stolen, keys);
}

// ---------------------------------------------------------------------------
// Live membership under concurrent traffic (no job lost, none duplicated)
// ---------------------------------------------------------------------------

TEST(RouterMembership, RemoveShardUnderTrafficLosesNoJobs)
{
    Optimization_router router(uniform_fleet(3));
    Optimization_service direct(smoke_service());

    constexpr int jobs_per_thread = 6;
    constexpr int total = 2 * jobs_per_thread;
    std::vector<std::string> results(total);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 2; ++t) {
        submitters.emplace_back([&router, &results, t] {
            for (int i = 0; i < jobs_per_thread; ++i) {
                const int n = t * jobs_per_thread + i;
                results[n] = comparable_bytes(router.submit("taso", variant_graph(n)).wait());
            }
        });
    }
    // Shrink the fleet mid-stream: the shard's backlog drains to
    // completion, its keys re-spread over the survivors.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    router.remove_shard(2);
    for (std::thread& thread : submitters) thread.join();
    router.drain();

    EXPECT_EQ(router.shard_count(), 2U);
    for (int n = 0; n < total; ++n)
        EXPECT_EQ(results[n], comparable_bytes(direct.optimize("taso", variant_graph(n))))
            << "job " << n << " diverged from the static-fleet result";
    const Router_stats stats = router.stats();
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(total)); // nothing double-submitted
    EXPECT_EQ(stats.total.failed, 0U);
    EXPECT_THROW(router.remove_shard(5), std::logic_error); // bounds are enforced
}

TEST(RouterMembership, RefusesToRemoveTheLastShard)
{
    Optimization_router router(uniform_fleet(1));
    EXPECT_THROW(router.remove_shard(0), std::invalid_argument);
    EXPECT_EQ(router.shard_count(), 1U);
    EXPECT_FALSE(router.submit("taso", quickstart_graph()).wait().cancelled);
}

TEST(RouterMembership, DrainShardFlushesAndReturnsToRotation)
{
    Optimization_router router(uniform_fleet(2));
    Optimization_service direct(smoke_service());

    std::atomic<bool> stop{false};
    std::atomic<int> pumped{0};
    std::thread pump([&] {
        for (int n = 0; !stop.load(); ++n) {
            router.submit("taso", variant_graph(n % 8)).wait();
            pumped.fetch_add(1);
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    router.drain_shard(0); // a maintenance flush under live traffic
    stop.store(true);
    pump.join();
    router.drain();

    EXPECT_EQ(router.shard_count(), 2U);
    EXPECT_FALSE(router.stats().health[0].draining); // back in rotation
    // The flushed shard still serves its keys afterwards, bit-identically.
    const Optimize_result after = router.submit("taso", quickstart_graph()).wait();
    EXPECT_EQ(comparable_bytes(after), comparable_bytes(direct.optimize("taso", quickstart_graph())));
    EXPECT_EQ(router.stats().total.failed, 0U);
    EXPECT_GE(pumped.load(), 1);
}

TEST(RouterMembership, ReplaceShardDrainsSwapsAndResetsHealth)
{
    auto plan = std::make_shared<Fault_plan>();
    Router_config config = uniform_fleet(2);
    config.fault_plan = plan;
    config.health.failure_threshold = 2;
    config.health.open_seconds = 3600.0; // stays open unless replaced
    Optimization_router router(config);

    // Keys the rendezvous sends to shard 0 (deterministic, so findable).
    std::vector<int> on_zero;
    for (int n = 0; n < 64 && on_zero.size() < 3; ++n)
        if (router.route("taso", variant_graph(n)) == 0) on_zero.push_back(n);
    ASSERT_EQ(on_zero.size(), 3U);

    // Kill shard 0: its jobs fail until the breaker trips.
    plan->add("shard/0", {.action = Fault_action::fail});
    EXPECT_THROW(router.submit("taso", variant_graph(on_zero[0])).wait(), std::runtime_error);
    EXPECT_THROW(router.submit("taso", variant_graph(on_zero[1])).wait(), std::runtime_error);
    ASSERT_EQ(settled_state(router, 0, Breaker_state::open), Breaker_state::open);
    EXPECT_GE(router.stats().health[0].trips, 1U);

    // With the breaker open, shard 0's keys re-spread and still succeed.
    EXPECT_FALSE(router.submit("taso", variant_graph(on_zero[2])).wait().cancelled);
    EXPECT_GE(router.stats().breaker_rerouted, 1U);

    // Replace the sick shard: heal the site, swap in a fresh server.
    plan->clear("shard/0");
    router.replace_shard(0);

    const Router_stats after = router.stats();
    ASSERT_EQ(after.health.size(), 2U);
    EXPECT_EQ(after.health[0].state, Breaker_state::closed); // clean breaker
    EXPECT_EQ(after.health[0].trips, 0U);
    EXPECT_EQ(after.health[0].stable_id, 0U); // same routing identity: no keys moved
    EXPECT_EQ(router.route("taso", variant_graph(on_zero[0])), 0U);
    EXPECT_FALSE(router.submit("taso", variant_graph(on_zero[0])).wait().cancelled);
    router.drain();
}

// ---------------------------------------------------------------------------
// The acceptance scenario: one shard of four force-failed mid-stream
// ---------------------------------------------------------------------------

TEST(FleetResilience, KilledShardIsAbsorbedWithBitIdenticalResultsAndHeals)
{
    auto plan = std::make_shared<Fault_plan>();
    Fake_clock clock;
    Router_config config = uniform_fleet(4);
    config.fault_plan = plan;
    config.health.failure_threshold = 2;
    config.health.open_seconds = 60.0;
    config.health.half_open_probes = 2;
    config.health.clock = clock.fn();
    Optimization_router router(config);
    Optimization_service direct(smoke_service());

    constexpr int models = 12;
    int steady_on_killed = 0;
    for (int n = 0; n < models; ++n)
        if (router.route("taso", variant_graph(n)) == 0) ++steady_on_killed;
    ASSERT_GE(steady_on_killed, 1) << "no model rendezvous-routes to shard 0; widen the set";

    // Shard 0 dies: every job it executes fails from here on.
    plan->add("shard/0", {.action = Fault_action::fail});

    int observed_failures = 0;
    for (int n = 0; n < models; ++n) {
        std::string bytes;
        for (int attempt = 0; attempt < 25 && bytes.empty(); ++attempt) {
            try {
                bytes = comparable_bytes(router.submit("taso", variant_graph(n)).wait());
            } catch (const std::runtime_error&) {
                ++observed_failures; // resubmit — the retrying client's move
            }
        }
        ASSERT_FALSE(bytes.empty()) << "job " << n << " was lost to the dead shard";
        // Surviving shards produce bit-identical results to a healthy run.
        EXPECT_EQ(bytes, comparable_bytes(direct.optimize("taso", variant_graph(n)))) << n;
    }
    EXPECT_GE(observed_failures, 2); // at least the trip's worth hit the dead shard

    ASSERT_EQ(settled_state(router, 0, Breaker_state::open), Breaker_state::open);
    Router_stats mid = router.stats();
    EXPECT_GE(mid.health[0].trips, 1U);
    EXPECT_GE(mid.breaker_rerouted, 1U); // the dead shard's slice re-spread
    EXPECT_EQ(mid.submitted, static_cast<std::uint64_t>(models + observed_failures));
    EXPECT_EQ(mid.total.failed, static_cast<std::uint64_t>(observed_failures));

    // Heal the shard and jump past the open window: the next submits are
    // admitted as half-open probes, and their successes close the breaker.
    plan->clear("shard/0");
    clock.advance_seconds(120);
    EXPECT_FALSE(router.submit("taso", variant_graph(models)).wait().cancelled);
    EXPECT_FALSE(router.submit("taso", variant_graph(models + 1)).wait().cancelled);
    EXPECT_EQ(settled_state(router, 0, Breaker_state::closed), Breaker_state::closed);

    router.drain();
    const Router_stats healed = router.stats();
    EXPECT_EQ(healed.health[0].state, Breaker_state::closed);
    EXPECT_GE(healed.probe_routed, 2U);
    // The re-admitted shard serves its keys again, still bit-identical.
    EXPECT_FALSE(router.submit("taso", variant_graph(0)).wait().cancelled);
}

// ---------------------------------------------------------------------------
// Client retries: idempotent resubmission over the wire
// ---------------------------------------------------------------------------

TEST(DaemonResilience, LostReplyRetryCoalescesOntoTheOriginalJob)
{
    auto plan = std::make_shared<Fault_plan>();
    Daemon_config config = smoke_daemon();
    config.fault_plan = plan;
    Daemon daemon(config);
    // The daemon's second sent frame — the submit_ok — vanishes in flight
    // (event 0 is the hello_ok).
    plan->add("daemon/send", {.begin = 1, .count = 1, .action = Fault_action::drop});

    Client_config client_config = client_for(daemon);
    client_config.timeouts.read_seconds = 2.0; // the lost reply surfaces as a read timeout
    client_config.retry.max_attempts = 3;
    client_config.retry.initial_backoff_seconds = 0.01;
    client_config.request_key_seed = 42; // reproducible idempotency keys
    Client client(client_config);
    EXPECT_EQ(client.server_protocol_version(), protocol_version);

    const Submit_ok accepted = client.submit("taso", quickstart_graph());
    const Optimize_result remote = client.wait(accepted.job_id);

    // One search, two connections, one replayed reply: at-most-once.
    const Daemon_wire_stats wire = daemon.stats();
    EXPECT_EQ(wire.connections_accepted, 2U);
    EXPECT_EQ(wire.jobs_submitted, 1U);
    EXPECT_EQ(wire.jobs_deduplicated, 1U);
    EXPECT_EQ(daemon.router().stats().submitted, 1U);

    Optimization_service direct(smoke_service());
    EXPECT_EQ(comparable_bytes(remote),
              comparable_bytes(direct.optimize("taso", quickstart_graph())));

    // Distinct submits draw distinct keys: no false replay.
    (void)client.optimize("taso", variant_graph(1));
    EXPECT_EQ(daemon.stats().jobs_deduplicated, 1U);
    EXPECT_EQ(daemon.stats().jobs_submitted, 2U); // wait() re-registered nothing
}

TEST(DaemonResilience, PermanentRejectionsAreNotRetried)
{
    Daemon daemon(smoke_daemon());
    Client_config config = client_for(daemon);
    config.retry.max_attempts = 4;
    config.retry.initial_backoff_seconds = 0.01;
    Client client(config);

    try {
        (void)client.submit("not-a-backend", quickstart_graph());
        FAIL() << "expected Protocol_error";
    } catch (const Protocol_error& error) {
        EXPECT_EQ(error.code(), Protocol_error_code::invalid_request);
        EXPECT_TRUE(error.remote());
        EXPECT_FALSE(error.retryable()); // resending the same bytes cannot help
    }
    const Daemon_wire_stats wire = daemon.stats();
    EXPECT_EQ(wire.connections_accepted, 1U); // no reconnect was attempted
    EXPECT_EQ(wire.jobs_submitted, 0U);

    // A typed rejection keeps the stream in sync: the connection survives.
    EXPECT_GT(client.optimize("taso", quickstart_graph()).final_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Sharpened client error texts: closed vs timed out
// ---------------------------------------------------------------------------

/// A server that completes the handshake, reads one request, and then
/// either closes cleanly or stalls forever — the two failure shapes the
/// client must tell apart.
struct Mini_server {
    Listener listener{"127.0.0.1", 0};
    std::thread thread;

    explicit Mini_server(bool stall)
    {
        thread = std::thread([this, stall] {
            std::optional<Connection> peer = listener.accept({5.0, 30.0, 10.0});
            if (!peer.has_value()) return;
            try {
                (void)read_frame(*peer); // the client's hello
                Hello_ok ok;
                ok.server_name = "mini";
                write_frame(*peer, 1, Pdu_type::hello_ok, encode_hello_ok(ok));
                (void)read_frame(*peer); // the request we will never answer
                if (!stall) peer->shutdown_send();
                // Hold the socket until the client gives up and hangs up.
                char drain = 0;
                while (peer->recv_some(&drain, 1) != 0) {}
            } catch (...) {
            }
        });
    }
    ~Mini_server()
    {
        listener.close();
        if (thread.joinable()) thread.join();
    }
};

Client_config mini_client_config(std::uint16_t port, Net_timeouts timeouts)
{
    Client_config config;
    config.port = port;
    config.timeouts = timeouts;
    return config;
}

TEST(ClientErrors, CleanCloseNamesTheAwaitedReply)
{
    Mini_server server(/*stall=*/false);
    Client client(mini_client_config(server.listener.port(), {5.0, 10.0, 10.0}));
    try {
        (void)client.stats();
        FAIL() << "expected Protocol_error";
    } catch (const Protocol_error& error) {
        EXPECT_EQ(error.code(), Protocol_error_code::io);
        EXPECT_TRUE(error.retryable());
        EXPECT_NE(std::string(error.what())
                      .find("closed the connection cleanly while awaiting stats_ok"),
                  std::string::npos)
            << error.what();
    }
}

TEST(ClientErrors, ReadTimeoutIsDistinctFromConnectFailure)
{
    Mini_server server(/*stall=*/true);
    Client client(mini_client_config(server.listener.port(), {5.0, 0.5, 10.0}));
    try {
        (void)client.stats();
        FAIL() << "expected Net_error";
    } catch (const Net_error& error) {
        EXPECT_EQ(error.kind(), Net_error_kind::timeout);
        const std::string what = error.what();
        EXPECT_NE(what.find("read timed out awaiting stats_ok"), std::string::npos) << what;
        EXPECT_NE(what.find("connected, but no reply within the read timeout"),
                  std::string::npos)
            << what;
    }
}

} // namespace
} // namespace xrl
