// Shared helpers for tests that drive backends through the unified API.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "core/optimizer_api.h"
#include "cost/device_registry.h"

namespace xrl::test {

/// The standard two-device fleet (gtx1080 default + a100), shared by tests
/// that only need *a* registry. Function-local static: initialised on first
/// use, outlives every context built from it.
inline const Device_registry& standard_devices()
{
    static Device_registry registry; // not movable (internal mutex) — fill in place
    static const bool initialised = (register_standard_devices(registry), true);
    (void)initialised;
    return registry;
}

/// Context over a caller-owned corpus (plus the shared standard device
/// registry) for driving backends through the unified API. `rules` must
/// outlive the context.
inline Optimizer_context api_context(const Rule_set& rules,
                                     std::map<std::string, double> options = {})
{
    Optimizer_context context;
    context.rules = &rules;
    context.devices = &standard_devices();
    context.options = std::move(options);
    return context;
}

} // namespace xrl::test
