// Shared helpers for tests that drive backends through the unified API.
#pragma once

#include <map>
#include <string>
#include <utility>

#include "core/optimizer_api.h"

namespace xrl::test {

/// Context over a caller-owned corpus + cost model for driving backends
/// through the unified API. `rules` and `cost` must outlive the context.
inline Optimizer_context api_context(const Rule_set& rules, const Cost_model& cost,
                                     std::map<std::string, double> options = {})
{
    Optimizer_context context;
    context.rules = &rules;
    context.cost = &cost;
    context.options = std::move(options);
    return context;
}

} // namespace xrl::test
