#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/executor.h"
#include "ir/graph.h"
#include "ir/op.h"
#include "ir/shape_inference.h"
#include "support/check.h"
#include "tensor/kernels.h"

namespace xrl {
namespace {

Graph dense_layer_graph()
{
    // The paper's Figure 1: y = ReLU(w . x + b).
    Graph_builder b;
    const Edge x = b.input({4, 8}, "x");
    const Edge w = b.weight({8, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    const Edge y = b.relu(b.add(b.matmul(x, w), bias));
    return b.finish({y});
}

TEST(Op, NamesRoundTrip)
{
    for (int i = 0; i < op_kind_count(); ++i) {
        const auto kind = static_cast<Op_kind>(i);
        EXPECT_EQ(op_kind_from_name(op_kind_name(kind)), kind);
    }
    EXPECT_THROW(op_kind_from_name("not_an_op"), Contract_violation);
}

TEST(Op, ActivationNamesRoundTrip)
{
    EXPECT_EQ(activation_from_name("relu"), Activation::relu);
    EXPECT_EQ(activation_from_name("none"), Activation::none);
    EXPECT_THROW(activation_from_name("zing"), Contract_violation);
}

TEST(Op, CommutativityFlags)
{
    EXPECT_TRUE(is_commutative(Op_kind::add));
    EXPECT_TRUE(is_commutative(Op_kind::mul));
    EXPECT_FALSE(is_commutative(Op_kind::sub));
    EXPECT_FALSE(is_commutative(Op_kind::matmul));
}

TEST(Op, ParamsHashDistinguishesFields)
{
    Op_params a;
    Op_params b;
    b.stride_h = 2;
    EXPECT_NE(hash_params(a), hash_params(b));
    Op_params c;
    c.axis = 1;
    EXPECT_NE(hash_params(a), hash_params(c));
    EXPECT_EQ(hash_params(a), hash_params(Op_params{}));
}

TEST(Op, ParamsToStringShowsNonDefaults)
{
    Op_params p;
    p.axis = 1;
    p.activation = Activation::relu;
    const std::string s = params_to_string(p);
    EXPECT_NE(s.find("axis=1"), std::string::npos);
    EXPECT_NE(s.find("act=relu"), std::string::npos);
    EXPECT_TRUE(params_to_string(Op_params{}).empty());
}

TEST(Graph, BuilderProducesValidGraph)
{
    const Graph g = dense_layer_graph();
    EXPECT_EQ(g.size(), 6u);
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.outputs().size(), 1u);
    EXPECT_EQ(g.shape_of(g.outputs().front()), (Shape{4, 16}));
}

TEST(Graph, TopoOrderRespectsDependencies)
{
    const Graph g = dense_layer_graph();
    const auto order = g.topo_order();
    std::vector<std::size_t> position(g.capacity());
    for (std::size_t i = 0; i < order.size(); ++i)
        position[static_cast<std::size_t>(order[i])] = i;
    for (const Node_id id : g.node_ids())
        for (const Edge& e : g.node(id).inputs)
            EXPECT_LT(position[static_cast<std::size_t>(e.node)],
                      position[static_cast<std::size_t>(id)]);
}

TEST(Graph, CycleIsDetected)
{
    Graph g;
    const Node_id a = g.add_node(Op_kind::input, {});
    g.node_mut(a).output_shapes = {Shape{2, 2}};
    const Node_id r1 = g.add_node(Op_kind::relu, {{a, 0}});
    const Node_id r2 = g.add_node(Op_kind::relu, {{r1, 0}});
    EXPECT_TRUE(g.is_acyclic());
    g.node_mut(r1).inputs[0] = {r2, 0}; // introduce a cycle r1 <-> r2
    EXPECT_FALSE(g.is_acyclic());
    EXPECT_THROW(g.topo_order(), Contract_violation);
}

TEST(Graph, UsersTracksAllUses)
{
    Graph_builder b;
    const Edge x = b.input({2, 2});
    const Edge y = b.add(x, x); // two uses of x in one node
    const Edge z = b.relu(y);
    const Graph g = b.finish({z});
    const auto users = g.build_users();
    EXPECT_EQ(users[static_cast<std::size_t>(x.node)].size(), 2u);
    EXPECT_EQ(users[static_cast<std::size_t>(y.node)].size(), 1u);
    EXPECT_TRUE(users[static_cast<std::size_t>(z.node)].empty());
}

TEST(Graph, ReplaceAllUsesRedirects)
{
    Graph_builder b;
    const Edge x = b.input({2, 2});
    const Edge r = b.relu(x);
    const Edge i = b.identity(x);
    Graph g = b.finish({r, i});
    // Redirect uses of x to the identity output (for r only; identity keeps
    // its own input to avoid a self-loop, so do it by hand).
    g.node_mut(r.node).inputs[0] = i;
    g.replace_all_uses(r, i);
    EXPECT_EQ(g.outputs()[0], i);
}

TEST(Graph, EraseRequiresNoUsers)
{
    Graph_builder b;
    const Edge x = b.input({2, 2});
    const Edge r = b.relu(x);
    Graph g = b.finish({r});
    EXPECT_THROW(g.erase_node(x.node), Contract_violation); // still used by r
}

TEST(Graph, EliminateDeadNodesKeepsInputs)
{
    Graph_builder b;
    const Edge x = b.input({2, 2});
    const Edge used = b.relu(x);
    const Edge dead1 = b.sigmoid(x);
    b.tanh(dead1); // dead2, unused
    Graph g = b.finish({used});
    const std::size_t before = g.size();
    const int removed = g.eliminate_dead_nodes();
    EXPECT_EQ(removed, 2);
    EXPECT_EQ(g.size(), before - 2);
    EXPECT_TRUE(g.is_alive(x.node)); // inputs always survive
    EXPECT_NO_THROW(g.validate());
}

TEST(Graph, ShapeListsAreStructurallySharedAcrossCopies)
{
    // Candidate materialisation copies the host graph per candidate; the
    // copies must share one Shape_list allocation per node, not clone them.
    const Graph g = dense_layer_graph();
    const Graph copy1 = g;
    const Graph copy2 = copy1;
    for (const Node_id id : g.node_ids()) {
        const Shape_list& original = g.node(id).output_shapes;
        EXPECT_TRUE(copy1.node(id).output_shapes.shares_storage_with(original));
        EXPECT_TRUE(copy2.node(id).output_shapes.shares_storage_with(original));
        EXPECT_EQ(original.use_count(), 3);
    }
}

TEST(Graph, ReinferenceKeepsStructuralSharingWhenShapesAreUnchanged)
{
    // The keep-if-equal guard in infer_shapes(): re-inferring identical
    // shapes must not allocate fresh lists (which would silently unshare
    // every candidate copy and resurrect the per-node allocation churn).
    const Graph g = dense_layer_graph();
    Graph copy = g;
    copy.infer_shapes();
    for (const Node_id id : g.node_ids()) {
        const Shape_list& original = g.node(id).output_shapes;
        EXPECT_TRUE(copy.node(id).output_shapes.shares_storage_with(original));
        EXPECT_EQ(original.use_count(), 2);
    }

    // A graph extended after the copy still shares the untouched prefix.
    Graph extended = g;
    const Node_id appended = extended.add_node(Op_kind::relu, {extended.outputs().front()});
    extended.set_outputs({{appended, 0}});
    extended.infer_shapes();
    for (const Node_id id : g.node_ids())
        EXPECT_TRUE(extended.node(id).output_shapes.shares_storage_with(
            g.node(id).output_shapes));
}

TEST(Graph, CanonicalHashEqualForIsomorphicConstruction)
{
    const Graph a = dense_layer_graph();
    const Graph b = dense_layer_graph();
    EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
}

TEST(Graph, CanonicalHashDiffersAcrossStructures)
{
    const Graph a = dense_layer_graph();
    Graph_builder builder;
    const Edge x = builder.input({4, 8});
    const Edge w = builder.weight({8, 16});
    const Edge y = builder.matmul(x, w); // no bias, no relu
    const Graph b = builder.finish({y});
    EXPECT_NE(a.canonical_hash(), b.canonical_hash());
}

TEST(Graph, CanonicalHashSensitiveToParams)
{
    Graph_builder b1;
    Graph_builder b2;
    const Edge x1 = b1.input({1, 4, 8, 8});
    const Edge w1 = b1.weight({4, 4, 3, 3});
    const Edge x2 = b2.input({1, 4, 8, 8});
    const Edge w2 = b2.weight({4, 4, 3, 3});
    const Graph g1 = b1.finish({b1.conv2d(x1, w1, 1, 1)});
    const Graph g2 = b2.finish({b2.conv2d(x2, w2, 1, 1, Activation::relu)});
    EXPECT_NE(g1.canonical_hash(), g2.canonical_hash());
}

TEST(Graph, DotExportMentionsAllNodes)
{
    const Graph g = dense_layer_graph();
    const std::string dot = g.to_dot();
    EXPECT_NE(dot.find("matmul"), std::string::npos);
    EXPECT_NE(dot.find("relu"), std::string::npos);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// --- shape inference ---------------------------------------------------------

TEST(ShapeInference, MatmulVariants)
{
    Graph_builder b;
    const Edge a2 = b.input({3, 4});
    const Edge b2 = b.input({4, 5});
    EXPECT_EQ(b.shape_of(b.matmul(a2, b2)), (Shape{3, 5}));
    const Edge a3 = b.input({2, 3, 4});
    const Edge b3 = b.input({2, 4, 6});
    EXPECT_EQ(b.shape_of(b.matmul(a3, b3)), (Shape{2, 3, 6}));
    EXPECT_EQ(b.shape_of(b.matmul(a3, b2)), (Shape{2, 3, 5}));
}

TEST(ShapeInference, MatmulRejectsMismatch)
{
    Graph_builder b;
    const Edge a = b.input({3, 4});
    const Edge c = b.input({5, 6});
    EXPECT_THROW(b.matmul(a, c), Contract_violation);
}

TEST(ShapeInference, ConvGeometry)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 224, 224});
    const Edge w = b.weight({64, 3, 7, 7});
    EXPECT_EQ(b.shape_of(b.conv2d(x, w, 2, 3)), (Shape{1, 64, 112, 112}));
}

TEST(ShapeInference, GroupedConvChecksChannels)
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 10, 10});
    const Edge w_ok = b.weight({8, 2, 3, 3});
    EXPECT_EQ(b.shape_of(b.conv2d(x, w_ok, 1, 1, Activation::none, 4)), (Shape{1, 8, 10, 10}));
    const Edge w_bad = b.weight({8, 3, 3, 3});
    EXPECT_THROW(b.conv2d(x, w_bad, 1, 1, Activation::none, 4), Contract_violation);
}

TEST(ShapeInference, PoolingAndGlobalPool)
{
    Graph_builder b;
    const Edge x = b.input({2, 16, 32, 32});
    EXPECT_EQ(b.shape_of(b.max_pool2d(x, 2, 2)), (Shape{2, 16, 16, 16}));
    EXPECT_EQ(b.shape_of(b.avg_pool2d(x, 3, 1, 1)), (Shape{2, 16, 32, 32}));
    EXPECT_EQ(b.shape_of(b.global_avg_pool(x)), (Shape{2, 16, 1, 1}));
}

TEST(ShapeInference, ConcatSplitSliceReshapeTranspose)
{
    Graph_builder b;
    const Edge x = b.input({2, 6});
    const Edge y = b.input({2, 4});
    EXPECT_EQ(b.shape_of(b.concat(1, {x, y})), (Shape{2, 10}));
    const auto parts = b.split(x, 1, {2, 4});
    EXPECT_EQ(b.shape_of(parts[0]), (Shape{2, 2}));
    EXPECT_EQ(b.shape_of(parts[1]), (Shape{2, 4}));
    EXPECT_EQ(b.shape_of(b.slice(x, 1, 1, 4)), (Shape{2, 3}));
    EXPECT_EQ(b.shape_of(b.reshape(x, {3, 4})), (Shape{3, 4}));
    EXPECT_EQ(b.shape_of(b.transpose(x)), (Shape{6, 2}));
    const Edge z = b.input({2, 3, 4});
    EXPECT_EQ(b.shape_of(b.transpose(z, {2, 0, 1})), (Shape{4, 2, 3}));
}

TEST(ShapeInference, ReduceEmbeddingEnlarge)
{
    Graph_builder b;
    const Edge x = b.input({2, 5});
    EXPECT_EQ(b.shape_of(b.reduce_sum(x, 1, true)), (Shape{2, 1}));
    EXPECT_EQ(b.shape_of(b.reduce_mean(x, 0, false)), (Shape{5}));
    const Edge ids = b.input({7});
    const Edge table = b.weight({100, 32});
    EXPECT_EQ(b.shape_of(b.embedding(ids, table)), (Shape{7, 32}));
    const Edge w = b.weight({8, 4, 1, 1});
    EXPECT_EQ(b.shape_of(b.enlarge(w, 3, 3)), (Shape{8, 4, 3, 3}));
}

TEST(ShapeInference, NormsPreserveShape)
{
    Graph_builder b;
    const Edge x = b.input({1, 8, 4, 4});
    EXPECT_EQ(b.shape_of(b.batch_norm(x, 8)), (Shape{1, 8, 4, 4}));
    const Edge t = b.input({2, 10, 64});
    EXPECT_EQ(b.shape_of(b.layer_norm(t, 64)), (Shape{2, 10, 64}));
    EXPECT_EQ(b.shape_of(b.softmax(t)), (Shape{2, 10, 64}));
}

// --- executor ----------------------------------------------------------------

TEST(Executor, DenseLayerMatchesKernels)
{
    const Graph g = dense_layer_graph();
    Rng rng(55);
    const Binding_map bindings = random_bindings(g, rng);
    const auto outputs = execute(g, bindings);
    ASSERT_EQ(outputs.size(), 1u);

    // Recompute by hand with the same deterministic weights.
    Node_id x_id = invalid_node;
    Node_id w_id = invalid_node;
    Node_id b_id = invalid_node;
    for (const Node_id id : g.node_ids()) {
        if (g.node(id).name == "x") x_id = id;
        if (g.node(id).name == "w") w_id = id;
        if (g.node(id).name == "b") b_id = id;
    }
    const Tensor& x = bindings.at(x_id);
    const Tensor w = materialise_weight({8, 16}, w_id, 0x5eedULL);
    const Tensor bias = materialise_weight({16}, b_id, 0x5eedULL);
    const Tensor expected = relu(add(matmul(x, w), bias));
    EXPECT_TRUE(Tensor::all_close(outputs[0], expected, 1e-5F));
}

TEST(Executor, WeightsAreStableAcrossRuns)
{
    const Graph g = dense_layer_graph();
    Rng rng(66);
    const Binding_map bindings = random_bindings(g, rng);
    const auto run1 = execute(g, bindings);
    const auto run2 = execute(g, bindings);
    EXPECT_TRUE(Tensor::all_close(run1[0], run2[0], 0.0F));
}

TEST(Executor, FusedActivationMatchesSeparateOp)
{
    Graph_builder b1;
    const Edge x1 = b1.input({2, 3}, "x");
    const Edge w1 = b1.weight({3, 4}, "w");
    const Graph fused = b1.finish({b1.matmul(x1, w1, Activation::relu)});

    Graph_builder b2;
    const Edge x2 = b2.input({2, 3}, "x");
    const Edge w2 = b2.weight({3, 4}, "w");
    const Graph separate = b2.finish({b2.relu(b2.matmul(x2, w2))});

    Rng rng(77);
    const Tensor x = Tensor::random_uniform({2, 3}, rng);
    const auto out1 = execute(fused, {{x1.node, x}});
    const auto out2 = execute(separate, {{x2.node, x}});
    // Same node ids in both constructions => same deterministic weights.
    EXPECT_TRUE(Tensor::all_close(out1[0], out2[0], 1e-6F));
}

TEST(Executor, SplitProducesMultipleOutputs)
{
    Graph_builder b;
    const Edge x = b.input({2, 6}, "x");
    const auto parts = b.split(x, 1, {2, 4});
    const Graph g = b.finish({parts[0], parts[1]});
    Rng rng(88);
    const Tensor xv = Tensor::random_uniform({2, 6}, rng);
    const auto outs = execute(g, {{x.node, xv}});
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_EQ(outs[0].shape(), (Shape{2, 2}));
    EXPECT_EQ(outs[1].shape(), (Shape{2, 4}));
    EXPECT_TRUE(Tensor::all_close(concat({outs[0], outs[1]}, 1), xv, 0.0F));
}

TEST(Executor, MissingBindingThrows)
{
    const Graph g = dense_layer_graph();
    EXPECT_THROW(execute(g, {}), Contract_violation);
}

TEST(Executor, ConstantPayloadFlowsThrough)
{
    Graph_builder b;
    const Edge c = b.constant(Tensor(Shape{2}, {1.5F, -2.0F}));
    const Graph g = b.finish({b.relu(c)});
    const auto outs = execute(g, {});
    EXPECT_EQ(outs[0].values(), (std::vector<float>{1.5F, 0.0F}));
}

// Parameterised: elementwise unary ops preserve shape and match kernels.
class Unary_op_shapes : public ::testing::TestWithParam<Op_kind> {};

TEST_P(Unary_op_shapes, ShapePreservedAndExecutes)
{
    const Op_kind kind = GetParam();
    Graph g;
    const Node_id x = g.add_node(Op_kind::input, {});
    g.node_mut(x).output_shapes = {Shape{2, 3}};
    Op_params params;
    if (kind == Op_kind::leaky_relu || kind == Op_kind::scale) params.scalar = 0.5F;
    const Node_id y = g.add_node(kind, {{x, 0}}, params);
    g.set_outputs({{y, 0}});
    g.infer_shapes();
    EXPECT_EQ(g.shape_of({y, 0}), (Shape{2, 3}));
    Rng rng(99);
    const auto outs = execute(g, {{x, Tensor::random_uniform({2, 3}, rng, 0.1F, 1.0F)}});
    EXPECT_EQ(outs[0].shape(), (Shape{2, 3}));
}

INSTANTIATE_TEST_SUITE_P(Kinds, Unary_op_shapes,
                         ::testing::Values(Op_kind::relu, Op_kind::leaky_relu, Op_kind::gelu,
                                           Op_kind::sigmoid, Op_kind::tanh, Op_kind::exp,
                                           Op_kind::sqrt, Op_kind::erf, Op_kind::identity,
                                           Op_kind::dropout, Op_kind::scale, Op_kind::softmax));

} // namespace
} // namespace xrl
