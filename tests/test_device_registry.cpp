// Device_registry: registration, default-device resolution, lazy per-device
// cost models / simulators with stable identities, inline-profile caching by
// fingerprint, device-aware request validation, and per-device memoisation
// (including xrlflow policy-cache isolation) in Optimization_service.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "core/optimization_service.h"
#include "core/optimizer_api.h"
#include "cost/device_registry.h"
#include "ir/builder.h"

namespace xrl {
namespace {

/// The quickstart graph (paper Figure 1): y = relu(x.w + b).
Graph quickstart_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

/// A fresh standard two-device fleet (Device_registry is not movable —
/// internal mutex — so tests hold it through this wrapper).
struct Standard_pair {
    Device_registry registry;
    Standard_pair() { register_standard_devices(registry); }
};

/// Smoke-scale backend budgets (plumbing, not search quality).
Service_config smoke_service()
{
    Service_config config;
    config.backend_options["taso.budget"] = 12;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 0;
    config.backend_options["xrlflow.max_steps"] = 6;
    return config;
}

// ---------------------------------------------------------------------------
// Registration and resolution
// ---------------------------------------------------------------------------

TEST(DeviceRegistry, RegistersListsAndDefaultsToFirstDevice)
{
    Device_registry registry;
    EXPECT_EQ(registry.size(), 0u);
    registry.add(gtx1080_profile());
    registry.add(a100_profile());
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_TRUE(registry.contains("gtx1080-sim"));
    EXPECT_TRUE(registry.contains("a100-sim"));
    EXPECT_FALSE(registry.contains("h100-sim"));
    EXPECT_EQ(registry.names(), (std::vector<std::string>{"a100-sim", "gtx1080-sim"}));

    // First registration is the default; set_default_device overrides.
    EXPECT_EQ(registry.default_device(), "gtx1080-sim");
    EXPECT_EQ(registry.resolve({}).name, "gtx1080-sim");
    registry.set_default_device("a100-sim");
    EXPECT_EQ(registry.resolve({}).name, "a100-sim");
    EXPECT_THROW(registry.set_default_device("h100-sim"), std::invalid_argument);
}

TEST(DeviceRegistry, RejectsEmptyAndDuplicateNames)
{
    Device_registry registry;
    EXPECT_THROW(registry.add(Device_profile{}), std::invalid_argument);
    registry.add(gtx1080_profile());
    EXPECT_THROW(registry.add(gtx1080_profile()), std::invalid_argument);
}

TEST(DeviceRegistry, UnknownNameThrowsListingRegisteredDevices)
{
    const Standard_pair fleet;
    const Device_registry& registry = fleet.registry;
    try {
        registry.cost_model({"h100-sim"});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("h100-sim"), std::string::npos);
        EXPECT_NE(what.find("gtx1080-sim"), std::string::npos);
        EXPECT_NE(what.find("a100-sim"), std::string::npos);
    }
}

TEST(DeviceRegistry, PerDeviceModelsAreLazyAndStable)
{
    const Standard_pair fleet;
    const Device_registry& registry = fleet.registry;
    const Cost_model& gtx = registry.cost_model({"gtx1080-sim"});
    const Cost_model& a100 = registry.cost_model({"a100-sim"});
    EXPECT_NE(&gtx, &a100);
    // Repeated resolution hands back the same object (the memo/policy
    // layers key on it being one model per device).
    EXPECT_EQ(&registry.cost_model({"gtx1080-sim"}), &gtx);
    EXPECT_EQ(&registry.simulator({"a100-sim"}), &registry.simulator({"a100-sim"}));

    // The device actually changes the numbers: the same graph is cheaper
    // on the a100-like profile (more flops, cheaper launches).
    const Graph g = quickstart_graph();
    EXPECT_LT(a100.graph_cost_ms(g), gtx.graph_cost_ms(g));
}

TEST(DeviceRegistry, InlineProfilesCacheByFingerprintAndUnifyWithRegisteredDevices)
{
    const Standard_pair fleet;
    const Device_registry& registry = fleet.registry;

    // An inline profile equal to a registered one resolves to *that* entry.
    EXPECT_EQ(&registry.cost_model(Target_device(a100_profile())),
              &registry.cost_model({"a100-sim"}));

    // A genuinely new inline profile gets its own cached entry.
    Device_profile custom = a100_profile();
    custom.name = "a100-overclocked";
    custom.flops_per_ms *= 1.25;
    const Cost_model& first = registry.cost_model(Target_device(custom));
    EXPECT_EQ(&registry.cost_model(Target_device(custom)), &first);
    EXPECT_NE(&first, &registry.cost_model({"a100-sim"}));
    EXPECT_EQ(registry.fingerprint(Target_device(custom)), custom.fingerprint());
    EXPECT_NE(custom.fingerprint(), a100_profile().fingerprint());
}

TEST(DeviceRegistry, InlineProfileCacheIsBoundedNotEvicted)
{
    // Entries hand out stable references, so the inline cache refuses
    // newcomers past its cap instead of evicting (a long-running server
    // fed distinct client profiles must not grow without bound).
    const Standard_pair fleet;
    Device_profile p = gtx1080_profile();
    p.name = "inline-variant";
    for (std::size_t i = 0; i < Device_registry::max_inline_entries; ++i) {
        p.flops_per_ms = 1e9 + static_cast<double>(i);
        fleet.registry.fingerprint(Target_device(p));
    }
    p.flops_per_ms = 5e9; // a 65th distinct profile
    EXPECT_THROW(fleet.registry.fingerprint(Target_device(p)), std::invalid_argument);
    // Registered devices and already-cached inline profiles still resolve.
    EXPECT_NO_THROW(fleet.registry.cost_model({"a100-sim"}));
    p.flops_per_ms = 1e9;
    EXPECT_NO_THROW(fleet.registry.fingerprint(Target_device(p)));
}

TEST(DeviceProfile, FingerprintSeparatesProfilesAndMatchesCopies)
{
    const Device_profile gtx = gtx1080_profile();
    EXPECT_EQ(gtx.fingerprint(), gtx1080_profile().fingerprint());
    EXPECT_NE(gtx.fingerprint(), a100_profile().fingerprint());
    Device_profile tweaked = gtx;
    tweaked.kernel_launch_ms *= 2.0;
    EXPECT_NE(tweaked.fingerprint(), gtx.fingerprint());
}

// ---------------------------------------------------------------------------
// Device-aware request validation
// ---------------------------------------------------------------------------

TEST(DeviceRegistry, ValidateRequestRejectsUnknownDeviceListingRegistered)
{
    const Standard_pair fleet;
    const Device_registry& registry = fleet.registry;
    Optimize_request request;
    request.device = "tpu-v4";
    try {
        validate_request(request, registry);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("tpu-v4"), std::string::npos);
        EXPECT_NE(what.find("gtx1080-sim"), std::string::npos);
        EXPECT_NE(what.find("a100-sim"), std::string::npos);
    }

    // Known names, the default, and inline profiles all pass.
    EXPECT_NO_THROW(validate_request({}, registry));
    request.device = "a100-sim";
    EXPECT_NO_THROW(validate_request(request, registry));
    request.device = Target_device(a100_profile());
    EXPECT_NO_THROW(validate_request(request, registry));

    // Malformed inline profiles are rejected by the base validation:
    // non-positive throughputs, NaN overheads, and anonymous profiles
    // (which would route and report under the default device's name).
    Device_profile broken = gtx1080_profile();
    broken.flops_per_ms = -1.0;
    request.device = Target_device(broken);
    EXPECT_THROW(validate_request(request, registry), std::invalid_argument);
    Device_profile nan_launch = gtx1080_profile();
    nan_launch.kernel_launch_ms = std::numeric_limits<double>::quiet_NaN();
    request.device = Target_device(nan_launch);
    EXPECT_THROW(validate_request(request, registry), std::invalid_argument);
    Device_profile anonymous = gtx1080_profile();
    anonymous.name.clear();
    request.device = Target_device(anonymous);
    EXPECT_THROW(validate_request(request, registry), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Per-device memoisation in Optimization_service
// ---------------------------------------------------------------------------

TEST(OptimizationService, MemoKeySeparatesDevices)
{
    const Optimize_request request;
    const std::uint64_t gtx = gtx1080_profile().fingerprint();
    const std::uint64_t a100 = a100_profile().fingerprint();
    EXPECT_NE(Optimization_service::memo_key(42, "taso", gtx, request),
              Optimization_service::memo_key(42, "taso", a100, request));
    EXPECT_EQ(Optimization_service::memo_key(42, "taso", gtx, request),
              Optimization_service::memo_key(42, "taso", gtx, request));
}

TEST(OptimizationService, SameGraphOnDifferentDevicesNeverSharesCacheEntries)
{
    Optimization_service service(smoke_service());
    const Graph g = quickstart_graph();

    Optimize_request on_a100;
    on_a100.device = "a100-sim";
    const Optimize_result gtx = service.optimize("taso", g);
    const Optimize_result a100 = service.optimize("taso", g, on_a100);
    EXPECT_FALSE(gtx.from_cache);
    EXPECT_FALSE(a100.from_cache); // distinct device => distinct memo entry
    EXPECT_EQ(service.cache_misses(), 2u);
    EXPECT_EQ(gtx.device, "gtx1080-sim");
    EXPECT_EQ(a100.device, "a100-sim");
    EXPECT_NE(gtx.final_ms, a100.final_ms); // different cost model, different numbers

    // Each device replays from its own entry.
    EXPECT_TRUE(service.optimize("taso", g).from_cache);
    EXPECT_TRUE(service.optimize("taso", g, on_a100).from_cache);
    EXPECT_EQ(service.cache_hits(), 2u);
}

TEST(OptimizationService, InlineProfileSharesCacheWithItsRegisteredTwin)
{
    Optimization_service service(smoke_service());
    const Graph g = quickstart_graph();

    Optimize_request named;
    named.device = "a100-sim";
    const Optimize_result first = service.optimize("taso", g, named);
    EXPECT_FALSE(first.from_cache);

    // Same hardware described inline: same fingerprint, same memo entry.
    Optimize_request inline_twin;
    inline_twin.device = Target_device(a100_profile());
    const Optimize_result replay = service.optimize("taso", g, inline_twin);
    EXPECT_TRUE(replay.from_cache);
    EXPECT_EQ(replay.final_ms, first.final_ms);
    EXPECT_EQ(replay.best_graph.canonical_hash(), first.best_graph.canonical_hash());
}

TEST(OptimizationService, UnknownDeviceThrowsBeforeAnySearchOrCacheWork)
{
    Optimization_service service(smoke_service());
    const Graph g = quickstart_graph();
    Optimize_request request;
    request.device = "h100-sim";
    EXPECT_THROW(service.optimize("taso", g, request), std::invalid_argument);
    EXPECT_THROW(service.optimize_all(g, request), std::invalid_argument);
    EXPECT_EQ(service.cache_misses(), 0u);
    EXPECT_EQ(service.cache_size(), 0u);
}

TEST(OptimizationService, ConfiguredFleetAndDefaultDeviceAreHonoured)
{
    Service_config config = smoke_service();
    Device_profile big = a100_profile();
    big.name = "a100-80gb";
    config.devices = {gtx1080_profile(), big};
    config.default_device = "a100-80gb";
    Optimization_service service(config);

    EXPECT_EQ(service.devices().names(), (std::vector<std::string>{"a100-80gb", "gtx1080-sim"}));
    EXPECT_EQ(service.device().name, "a100-80gb");
    const Optimize_result result = service.optimize("taso", quickstart_graph());
    EXPECT_EQ(result.device, "a100-80gb");

    // The standard pair's second device is not in this fleet.
    Optimize_request request;
    request.device = "a100-sim";
    EXPECT_THROW(service.optimize("taso", quickstart_graph(), request), std::invalid_argument);
}

TEST(OptimizationService, XrlflowPolicyCacheIsolatesDevices)
{
    // episodes > 0 so the adapter actually trains and caches a policy per
    // (graph, seed, episodes, device).
    Service_config config = smoke_service();
    config.backend_options["xrlflow.episodes"] = 2;
    Optimization_service service(config);
    const Graph g = quickstart_graph();

    Optimize_request on_a100;
    on_a100.device = "a100-sim";
    const Optimize_result gtx_first = service.optimize("xrlflow", g);
    const Optimize_result a100 = service.optimize("xrlflow", g, on_a100);
    EXPECT_EQ(gtx_first.device, "gtx1080-sim");
    EXPECT_EQ(a100.device, "a100-sim");
    EXPECT_NE(gtx_first.final_ms, a100.final_ms);

    // Replaying the gtx request bypasses the memo cache (cleared) but hits
    // the trained-policy cache: training for the a100 in between must not
    // have clobbered the gtx policy — bit-identical inference proves the
    // cache is keyed by device.
    service.clear_cache();
    const Optimize_result gtx_again = service.optimize("xrlflow", g);
    EXPECT_FALSE(gtx_again.from_cache);
    EXPECT_EQ(gtx_again.final_ms, gtx_first.final_ms);
    EXPECT_EQ(gtx_again.best_graph.canonical_hash(), gtx_first.best_graph.canonical_hash());
}

} // namespace
} // namespace xrl
