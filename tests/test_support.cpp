#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "support/check.h"
#include "support/config.h"
#include "support/rng.h"

namespace xrl {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIndexCoversRange)
{
    Rng rng(11);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_index(5)];
    for (const int c : counts) EXPECT_GT(c, 700); // roughly uniform
}

TEST(Rng, NormalHasExpectedMoments)
{
    Rng rng(13);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.1);
    EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, SampleWeightsPrefersHeavyEntries)
{
    Rng rng(19);
    std::vector<double> weights = {0.0, 1.0, 9.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 10000; ++i) ++counts[rng.sample_weights(weights)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(Rng, SampleWeightsRejectsEmptyAndNegative)
{
    Rng rng(3);
    EXPECT_THROW(rng.sample_weights({}), Contract_violation);
    EXPECT_THROW(rng.sample_weights({1.0, -0.5}), Contract_violation);
    EXPECT_THROW(rng.sample_weights({0.0, 0.0}), Contract_violation);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng child = a.split();
    EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Check, ExpectsThrowsOnViolation)
{
    EXPECT_THROW(XRL_EXPECTS(false), Contract_violation);
    EXPECT_NO_THROW(XRL_EXPECTS(true));
}

TEST(Check, EnsuresThrowsOnViolation)
{
    EXPECT_THROW(XRL_ENSURES(1 == 2), Contract_violation);
}

TEST(Check, MessageNamesLocation)
{
    try {
        XRL_EXPECTS(false);
        FAIL() << "should have thrown";
    } catch (const Contract_violation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("Expects"), std::string::npos);
        EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
    }
}

TEST(Config, EnvOrFallsBack)
{
    ::unsetenv("XRLFLOW_TEST_UNSET");
    EXPECT_EQ(env_or("XRLFLOW_TEST_UNSET", "dflt"), "dflt");
    ::setenv("XRLFLOW_TEST_SET", "value", 1);
    EXPECT_EQ(env_or("XRLFLOW_TEST_SET", "dflt"), "value");
}

TEST(Config, EnvOrIntParsesAndRejects)
{
    ::setenv("XRLFLOW_TEST_INT", "123", 1);
    EXPECT_EQ(env_or_int("XRLFLOW_TEST_INT", 9), 123);
    ::setenv("XRLFLOW_TEST_INT", "bogus", 1);
    EXPECT_EQ(env_or_int("XRLFLOW_TEST_INT", 9), 9);
    ::unsetenv("XRLFLOW_TEST_INT");
    EXPECT_EQ(env_or_int("XRLFLOW_TEST_INT", -4), -4);
}

TEST(Config, ScaleParses)
{
    ::setenv("XRLFLOW_SCALE", "paper", 1);
    EXPECT_EQ(scale_from_env(), Scale::paper);
    ::setenv("XRLFLOW_SCALE", "smoke", 1);
    EXPECT_EQ(scale_from_env(), Scale::smoke);
    ::unsetenv("XRLFLOW_SCALE");
    EXPECT_EQ(scale_from_env(), Scale::smoke);
}

} // namespace
} // namespace xrl
