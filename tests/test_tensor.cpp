#include <gtest/gtest.h>

#include <cmath>

#include "support/check.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace xrl {
namespace {

TEST(Shape, VolumeOfScalarIsOne)
{
    EXPECT_EQ(shape_volume({}), 1);
}

TEST(Shape, VolumeMultipliesExtents)
{
    EXPECT_EQ(shape_volume({2, 3, 4}), 24);
    EXPECT_EQ(shape_volume({5, 0}), 0);
}

TEST(Shape, ToStringFormats)
{
    EXPECT_EQ(shape_to_string({1, 3, 256, 256}), "[1, 3, 256, 256]");
    EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Tensor, ZeroInitialised)
{
    const Tensor t(Shape{2, 2});
    for (std::int64_t i = 0; i < t.volume(); ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, ConstructionChecksVolume)
{
    EXPECT_THROW(Tensor(Shape{2, 2}, {1.0F, 2.0F}), Contract_violation);
}

TEST(Tensor, FlatIndexRowMajor)
{
    const Tensor t(Shape{2, 3, 4});
    EXPECT_EQ(t.flat_index({0, 0, 0}), 0);
    EXPECT_EQ(t.flat_index({0, 0, 3}), 3);
    EXPECT_EQ(t.flat_index({0, 1, 0}), 4);
    EXPECT_EQ(t.flat_index({1, 2, 3}), 23);
}

TEST(Tensor, ReshapePreservesData)
{
    const Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.shape(), (Shape{3, 2}));
    EXPECT_EQ(r.at(5), 6.0F);
    EXPECT_THROW(t.reshaped({4, 2}), Contract_violation);
}

TEST(Tensor, AllCloseDetectsDifferences)
{
    const Tensor a(Shape{2}, {1.0F, 2.0F});
    const Tensor b(Shape{2}, {1.0F, 2.00001F});
    const Tensor c(Shape{2}, {1.0F, 3.0F});
    EXPECT_TRUE(Tensor::all_close(a, b, 1e-4F));
    EXPECT_FALSE(Tensor::all_close(a, c, 1e-4F));
    EXPECT_FALSE(Tensor::all_close(a, Tensor(Shape{1, 2}, {1.0F, 2.0F})));
}

TEST(Broadcast, ShapesFollowNumpyRules)
{
    EXPECT_EQ(broadcast_shapes({2, 3}, {2, 3}), (Shape{2, 3}));
    EXPECT_EQ(broadcast_shapes({2, 1}, {1, 3}), (Shape{2, 3}));
    EXPECT_EQ(broadcast_shapes({3}, {2, 3}), (Shape{2, 3}));
    EXPECT_EQ(broadcast_shapes({}, {4, 5}), (Shape{4, 5}));
    EXPECT_THROW(broadcast_shapes({2, 3}, {2, 4}), Contract_violation);
}

TEST(Ewise, AddSameShape)
{
    const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
    const Tensor b(Shape{2, 2}, {10, 20, 30, 40});
    const Tensor c = add(a, b);
    EXPECT_EQ(c.values(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(Ewise, AddBroadcastRow)
{
    const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor bias(Shape{3}, {10, 20, 30});
    const Tensor c = add(a, bias);
    EXPECT_EQ(c.values(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(Ewise, MulBroadcastColumn)
{
    const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor col(Shape{2, 1}, {2, 3});
    const Tensor c = mul(a, col);
    EXPECT_EQ(c.values(), (std::vector<float>{2, 4, 6, 12, 15, 18}));
}

TEST(Ewise, SubAndDiv)
{
    const Tensor a(Shape{2}, {6, 9});
    const Tensor b(Shape{2}, {2, 3});
    EXPECT_EQ(sub(a, b).values(), (std::vector<float>{4, 6}));
    EXPECT_EQ(div(a, b).values(), (std::vector<float>{3, 3}));
}

TEST(Ewise, UnaryFunctions)
{
    const Tensor a(Shape{3}, {-1.0F, 0.0F, 2.0F});
    EXPECT_EQ(relu(a).values(), (std::vector<float>{0, 0, 2}));
    EXPECT_FLOAT_EQ(leaky_relu(a, 0.1F).at(0), -0.1F);
    EXPECT_FLOAT_EQ(sigmoid(Tensor::scalar(0.0F)).at(0), 0.5F);
    EXPECT_NEAR(tanh_op(Tensor::scalar(1.0F)).at(0), std::tanh(1.0F), 1e-6F);
    EXPECT_NEAR(exp_op(Tensor::scalar(1.0F)).at(0), std::exp(1.0F), 1e-5F);
    EXPECT_FLOAT_EQ(sqrt_op(Tensor::scalar(9.0F)).at(0), 3.0F);
    EXPECT_NEAR(gelu(Tensor::scalar(0.0F)).at(0), 0.0F, 1e-6F);
    EXPECT_FLOAT_EQ(scale(a, 2.0F).at(2), 4.0F);
}

TEST(Matmul, TwoByTwo)
{
    const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
    const Tensor b(Shape{2, 2}, {5, 6, 7, 8});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.values(), (std::vector<float>{19, 22, 43, 50}));
}

TEST(Matmul, RectangularShapes)
{
    const Tensor a(Shape{1, 3}, {1, 2, 3});
    const Tensor b(Shape{3, 2}, {1, 0, 0, 1, 1, 1});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{1, 2}));
    EXPECT_EQ(c.values(), (std::vector<float>{4, 5}));
}

TEST(Matmul, BatchedBothSides)
{
    const Tensor a(Shape{2, 1, 2}, {1, 2, 3, 4});
    const Tensor b(Shape{2, 2, 1}, {1, 1, 2, 2});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
    EXPECT_EQ(c.values(), (std::vector<float>{3, 14}));
}

TEST(Matmul, BatchedBroadcastRhs)
{
    const Tensor a(Shape{2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
    const Tensor b(Shape{2, 2}, {1, 2, 3, 4});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
    EXPECT_EQ(c.values(), (std::vector<float>{1, 2, 3, 4, 2, 4, 6, 8}));
}

TEST(Matmul, MismatchedInnerDimThrows)
{
    const Tensor a(Shape{2, 3});
    const Tensor b(Shape{2, 2});
    EXPECT_THROW(matmul(a, b), Contract_violation);
}

TEST(Transpose, PermutesAxes)
{
    const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor t = transpose(a, {1, 0});
    EXPECT_EQ(t.shape(), (Shape{3, 2}));
    EXPECT_EQ(t.values(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(Transpose, Last2OnRank3)
{
    const Tensor a(Shape{2, 2, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
    const Tensor t = transpose_last2(a);
    EXPECT_EQ(t.shape(), (Shape{2, 3, 2}));
    EXPECT_EQ(t.at(0), 1.0F);
    EXPECT_EQ(t.at(1), 4.0F);
}

TEST(Transpose, DoubleTransposeIsIdentity)
{
    Rng rng(5);
    const Tensor a = Tensor::random_uniform({3, 4, 5}, rng);
    const Tensor round_trip = transpose(transpose(a, {2, 0, 1}), {1, 2, 0});
    EXPECT_TRUE(Tensor::all_close(a, round_trip, 0.0F));
}

TEST(ConcatSplit, RoundTripAxis0)
{
    Rng rng(6);
    const Tensor a = Tensor::random_uniform({2, 3}, rng);
    const Tensor b = Tensor::random_uniform({4, 3}, rng);
    const Tensor joined = concat({a, b}, 0);
    EXPECT_EQ(joined.shape(), (Shape{6, 3}));
    const auto parts = split(joined, 0, {2, 4});
    EXPECT_TRUE(Tensor::all_close(parts[0], a, 0.0F));
    EXPECT_TRUE(Tensor::all_close(parts[1], b, 0.0F));
}

TEST(ConcatSplit, RoundTripInnerAxis)
{
    Rng rng(8);
    const Tensor a = Tensor::random_uniform({2, 2, 3}, rng);
    const Tensor b = Tensor::random_uniform({2, 5, 3}, rng);
    const Tensor joined = concat({a, b}, 1);
    EXPECT_EQ(joined.shape(), (Shape{2, 7, 3}));
    const auto parts = split(joined, 1, {2, 5});
    EXPECT_TRUE(Tensor::all_close(parts[0], a, 0.0F));
    EXPECT_TRUE(Tensor::all_close(parts[1], b, 0.0F));
}

TEST(ConcatSplit, MismatchedSizesThrow)
{
    const Tensor a(Shape{2, 3});
    const Tensor b(Shape{2, 4});
    EXPECT_THROW(concat({a, b}, 0), Contract_violation);
    EXPECT_THROW(split(a, 0, {1, 2}), Contract_violation);
}

TEST(Slice, ExtractsHalfOpenRange)
{
    const Tensor a(Shape{4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
    const Tensor s = slice(a, 0, 1, 3);
    EXPECT_EQ(s.shape(), (Shape{2, 2}));
    EXPECT_EQ(s.values(), (std::vector<float>{3, 4, 5, 6}));
}

TEST(Pad, ZeroPadsSpatially)
{
    const Tensor a(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
    const Tensor p = pad(a, {0, 0, 1, 1}, {0, 0, 1, 1});
    EXPECT_EQ(p.shape(), (Shape{1, 1, 4, 4}));
    EXPECT_EQ(p.at(0), 0.0F);
    EXPECT_EQ(p.at(5), 1.0F);
    EXPECT_EQ(p.at(10), 4.0F);
}

TEST(Conv2d, IdentityKernelPreservesInput)
{
    Rng rng(9);
    const Tensor x = Tensor::random_uniform({1, 1, 4, 4}, rng);
    Tensor w(Shape{1, 1, 3, 3});
    w.at(4) = 1.0F; // centre tap
    Conv2d_spec spec;
    spec.pad_h = 1;
    spec.pad_w = 1;
    const Tensor y = conv2d(x, w, spec);
    EXPECT_TRUE(Tensor::all_close(x, y, 1e-6F));
}

TEST(Conv2d, HandComputedValues)
{
    const Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
    const Tensor w(Shape{1, 1, 2, 2}, {1, 1, 1, 1});
    Conv2d_spec spec; // stride 1, no padding
    const Tensor y = conv2d(x, w, spec);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
    EXPECT_EQ(y.at(0), 10.0F);
}

TEST(Conv2d, StrideReducesOutput)
{
    const Tensor x = Tensor::full({1, 1, 4, 4}, 1.0F);
    const Tensor w = Tensor::full({1, 1, 2, 2}, 1.0F);
    Conv2d_spec spec;
    spec.stride_h = 2;
    spec.stride_w = 2;
    const Tensor y = conv2d(x, w, spec);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    for (std::int64_t i = 0; i < y.volume(); ++i) EXPECT_EQ(y.at(i), 4.0F);
}

TEST(Conv2d, GroupedConvPartitionsChannels)
{
    // Two groups, each a 1x1 identity kernel: output equals input.
    const Tensor x(Shape{1, 2, 1, 1}, {3, 5});
    const Tensor w(Shape{2, 1, 1, 1}, {1, 1});
    Conv2d_spec spec;
    spec.groups = 2;
    const Tensor y = conv2d(x, w, spec);
    EXPECT_EQ(y.values(), (std::vector<float>{3, 5}));
}

TEST(Conv2d, GroupedEqualsConcatOfPerGroupConvs)
{
    Rng rng(21);
    const Tensor x = Tensor::random_uniform({1, 4, 5, 5}, rng);
    const Tensor w = Tensor::random_uniform({6, 2, 3, 3}, rng);
    Conv2d_spec grouped;
    grouped.groups = 2;
    grouped.pad_h = grouped.pad_w = 1;
    const Tensor whole = conv2d(x, w, grouped);

    Conv2d_spec dense;
    dense.pad_h = dense.pad_w = 1;
    const auto xs = split(x, 1, {2, 2});
    const auto ws = split(w, 0, {3, 3});
    const Tensor part = concat({conv2d(xs[0], ws[0], dense), conv2d(xs[1], ws[1], dense)}, 1);
    EXPECT_TRUE(Tensor::all_close(whole, part, 1e-4F));
}

TEST(Pool, MaxPoolPicksMaxima)
{
    const Tensor x(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
    Pool2d_spec spec;
    const Tensor y = max_pool2d(x, spec);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
    EXPECT_EQ(y.at(0), 5.0F);
}

TEST(Pool, AvgPoolAverages)
{
    const Tensor x(Shape{1, 1, 2, 2}, {1, 5, 3, 3});
    Pool2d_spec spec;
    const Tensor y = avg_pool2d(x, spec);
    EXPECT_EQ(y.at(0), 3.0F);
}

TEST(Pool, GlobalAvgPool)
{
    const Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
    const Tensor y = global_avg_pool(x);
    EXPECT_EQ(y.shape(), (Shape{1, 2, 1, 1}));
    EXPECT_FLOAT_EQ(y.at(0), 2.5F);
    EXPECT_FLOAT_EQ(y.at(1), 10.0F);
}

TEST(Norm, BatchNormMatchesFormula)
{
    const Tensor x(Shape{1, 1, 1, 2}, {2.0F, 4.0F});
    const Tensor gamma(Shape{1}, {2.0F});
    const Tensor beta(Shape{1}, {1.0F});
    const Tensor mean(Shape{1}, {3.0F});
    const Tensor variance(Shape{1}, {4.0F});
    const Tensor y = batch_norm(x, gamma, beta, mean, variance, 0.0F);
    EXPECT_NEAR(y.at(0), (2.0F - 3.0F) / 2.0F * 2.0F + 1.0F, 1e-5F);
    EXPECT_NEAR(y.at(1), (4.0F - 3.0F) / 2.0F * 2.0F + 1.0F, 1e-5F);
}

TEST(Norm, LayerNormNormalisesRows)
{
    Rng rng(31);
    const Tensor x = Tensor::random_uniform({4, 8}, rng);
    const Tensor gamma = Tensor::full({8}, 1.0F);
    const Tensor beta(Shape{8});
    const Tensor y = layer_norm(x, gamma, beta, 1e-6F);
    for (std::int64_t row = 0; row < 4; ++row) {
        float mean = 0.0F;
        for (std::int64_t i = 0; i < 8; ++i) mean += y.at(row * 8 + i);
        EXPECT_NEAR(mean / 8.0F, 0.0F, 1e-4F);
    }
}

TEST(Softmax, RowsSumToOne)
{
    Rng rng(33);
    const Tensor x = Tensor::random_uniform({5, 7}, rng, -4.0F, 4.0F);
    const Tensor y = softmax(x);
    for (std::int64_t row = 0; row < 5; ++row) {
        float total = 0.0F;
        for (std::int64_t i = 0; i < 7; ++i) {
            EXPECT_GT(y.at(row * 7 + i), 0.0F);
            total += y.at(row * 7 + i);
        }
        EXPECT_NEAR(total, 1.0F, 1e-5F);
    }
}

TEST(Softmax, InvariantToRowShift)
{
    const Tensor x(Shape{1, 3}, {1, 2, 3});
    const Tensor shifted(Shape{1, 3}, {101, 102, 103});
    EXPECT_TRUE(Tensor::all_close(softmax(x), softmax(shifted), 1e-5F));
}

TEST(Reduce, SumAndMeanAlongAxis)
{
    const Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor s0 = reduce_sum(x, 0, false);
    EXPECT_EQ(s0.shape(), (Shape{3}));
    EXPECT_EQ(s0.values(), (std::vector<float>{5, 7, 9}));
    const Tensor m1 = reduce_mean(x, 1, true);
    EXPECT_EQ(m1.shape(), (Shape{2, 1}));
    EXPECT_EQ(m1.values(), (std::vector<float>{2, 5}));
}

TEST(Embedding, GathersRows)
{
    const Tensor table(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
    const Tensor ids(Shape{2}, {2, 0});
    const Tensor y = embedding(ids, table);
    EXPECT_EQ(y.shape(), (Shape{2, 2}));
    EXPECT_EQ(y.values(), (std::vector<float>{20, 21, 0, 1}));
}

TEST(Embedding, OutOfRangeThrows)
{
    const Tensor table(Shape{3, 2});
    const Tensor ids(Shape{1}, {3});
    EXPECT_THROW(embedding(ids, table), Contract_violation);
}

TEST(Enlarge, PadsKernelCentred)
{
    const Tensor w(Shape{1, 1, 1, 1}, {7});
    const Tensor e = enlarge_kernel(w, 3, 3);
    EXPECT_EQ(e.shape(), (Shape{1, 1, 3, 3}));
    EXPECT_EQ(e.at(4), 7.0F);
    EXPECT_EQ(e.at(0), 0.0F);
}

TEST(Enlarge, EnlargedConvMatchesPaddedConv)
{
    // conv(x, w_1x1) == conv(x, enlarge(w, 3, 3)) with one extra pad.
    Rng rng(41);
    const Tensor x = Tensor::random_uniform({1, 2, 5, 5}, rng);
    const Tensor w = Tensor::random_uniform({3, 2, 1, 1}, rng);
    Conv2d_spec small;
    const Tensor y_small = conv2d(x, w, small);
    Conv2d_spec big;
    big.pad_h = big.pad_w = 1;
    const Tensor y_big = conv2d(x, enlarge_kernel(w, 3, 3), big);
    EXPECT_TRUE(Tensor::all_close(y_small, y_big, 1e-4F));
}

// Parameterised sweep: matmul result matches a straightforward triple loop
// across a family of shapes.
class Matmul_shapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Matmul_shapes, MatchesNaiveTripleLoop)
{
    const auto [m, k, n] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
    const Tensor a = Tensor::random_uniform({m, k}, rng);
    const Tensor b = Tensor::random_uniform({k, n}, rng);
    const Tensor c = matmul(a, b);
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            float acc = 0.0F;
            for (int kk = 0; kk < k; ++kk) acc += a.at(i * k + kk) * b.at(kk * n + j);
            EXPECT_NEAR(c.at(i * n + j), acc, 1e-4F);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Matmul_shapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{5, 1, 7}, std::tuple{8, 8, 8},
                                           std::tuple{3, 16, 2}, std::tuple{13, 7, 5}));

// Parameterised sweep: concat/split round-trips along every axis of a rank-3
// tensor.
class Concat_axis : public ::testing::TestWithParam<int> {};

TEST_P(Concat_axis, SplitOfConcatIsIdentity)
{
    const int axis = GetParam();
    Rng rng(static_cast<std::uint64_t>(axis + 100));
    Shape sa{2, 3, 4};
    Shape sb{2, 3, 4};
    sa[static_cast<std::size_t>(axis)] = 2;
    sb[static_cast<std::size_t>(axis)] = 5;
    const Tensor a = Tensor::random_uniform(sa, rng);
    const Tensor b = Tensor::random_uniform(sb, rng);
    const auto parts = split(concat({a, b}, axis), axis, {2, 5});
    EXPECT_TRUE(Tensor::all_close(parts[0], a, 0.0F));
    EXPECT_TRUE(Tensor::all_close(parts[1], b, 0.0F));
}

INSTANTIATE_TEST_SUITE_P(Axes, Concat_axis, ::testing::Values(0, 1, 2));

} // namespace
} // namespace xrl
