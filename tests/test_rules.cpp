#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.h"
#include "ir/executor.h"
#include "rules/bespoke_rules.h"
#include "rules/corpus.h"
#include "rules/generator.h"
#include "rules/pattern.h"
#include "rules/rule.h"
#include "rules/serialization.h"

namespace xrl {
namespace {

/// Execute `before` and `after` with the same random input bindings and
/// require equal outputs. Input node ids must be preserved by the
/// transformation (they are: substitution never touches source nodes).
void expect_equivalent(const Graph& before, const Graph& after, std::uint64_t seed,
                       float tolerance = 1e-4F)
{
    Rng rng(seed);
    const Binding_map bindings = random_bindings(before, rng);
    const auto out_before = execute(before, bindings);
    const auto out_after = execute(after, bindings);
    ASSERT_EQ(out_before.size(), out_after.size());
    for (std::size_t i = 0; i < out_before.size(); ++i) {
        EXPECT_EQ(out_before[i].shape(), out_after[i].shape());
        EXPECT_LE(Tensor::max_abs_difference(out_before[i], out_after[i]), tolerance);
    }
}

// ---------------------------------------------------------------------------
// Property test: every curated pattern rule is semantics-preserving when
// applied to its own source graph (which doubles as a minimal host).
// ---------------------------------------------------------------------------

class Curated_rule_property : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Curated_rule_property, PreservesSemanticsOnSampleHost)
{
    auto patterns = curated_patterns();
    Pattern& pattern = patterns[GetParam()];
    const Graph& host = pattern.source;

    const auto matches = find_matches(host, pattern);
    ASSERT_FALSE(matches.empty()) << pattern.name << " does not match its own source";

    int applied = 0;
    for (const auto& match : matches) {
        const auto transformed = apply_match(host, pattern, match);
        if (!transformed.has_value()) continue;
        ++applied;
        expect_equivalent(host, *transformed, 1234 + GetParam());
    }
    EXPECT_GE(applied, 1) << pattern.name << " produced no valid transformation";
}

INSTANTIATE_TEST_SUITE_P(AllCuratedRules, Curated_rule_property,
                         ::testing::Range<std::size_t>(0, curated_patterns().size()),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             std::string name = curated_patterns()[info.param].name;
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

// ---------------------------------------------------------------------------
// Matcher behaviour
// ---------------------------------------------------------------------------

Pattern relu_matmul_pattern()
{
    Pattern p;
    p.name = "test-fuse";
    Graph_builder src;
    const Edge x = src.input({4, 4});
    const Edge w = src.input({4, 4});
    const Edge m = src.matmul(x, w);
    p.source = src.finish({src.relu(m)});
    p.param_modes[m.node] = Param_match::ignore;
    p.required_activation[m.node] = Activation::none;
    Graph_builder tgt;
    const Edge tx = tgt.input({4, 4});
    const Edge tw = tgt.input({4, 4});
    const Edge tm = tgt.matmul(tx, tw);
    p.target = tgt.finish({tm});
    p.param_transfers[tm.node] = Param_transfer{m.node, Activation::relu};
    p.finalise();
    return p;
}

TEST(Matcher, FindsSingleSite)
{
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w = b.weight({4, 4});
    const Graph host = b.finish({b.relu(b.matmul(x, w))});
    const Pattern p = relu_matmul_pattern();
    EXPECT_EQ(find_matches(host, p).size(), 1u);
}

TEST(Matcher, FindsMultipleSites)
{
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w1 = b.weight({4, 4});
    const Edge w2 = b.weight({4, 4});
    const Edge y1 = b.relu(b.matmul(x, w1));
    const Edge y2 = b.relu(b.matmul(y1, w2));
    const Graph host = b.finish({y2});
    EXPECT_EQ(find_matches(host, relu_matmul_pattern()).size(), 2u);
}

TEST(Matcher, RespectsMatchLimit)
{
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w1 = b.weight({4, 4});
    const Edge w2 = b.weight({4, 4});
    const Edge y1 = b.relu(b.matmul(x, w1));
    const Edge y2 = b.relu(b.matmul(y1, w2));
    const Graph host = b.finish({y2});
    EXPECT_EQ(find_matches(host, relu_matmul_pattern(), 1).size(), 1u);
}

TEST(Matcher, RejectsWhenInternalNodeUsedOutside)
{
    // The matmul output feeds both the relu and a second consumer; fusing
    // would duplicate work, so the match must be rejected.
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w = b.weight({4, 4});
    const Edge m = b.matmul(x, w);
    const Edge r = b.relu(m);
    const Edge other = b.tanh(m);
    const Graph host = b.finish({r, other});
    EXPECT_TRUE(find_matches(host, relu_matmul_pattern()).empty());
}

TEST(Matcher, RejectsWhenInternalNodeIsGraphOutput)
{
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w = b.weight({4, 4});
    const Edge m = b.matmul(x, w);
    const Edge r = b.relu(m);
    const Graph host = b.finish({r, m}); // matmul itself is a graph output
    EXPECT_TRUE(find_matches(host, relu_matmul_pattern()).empty());
}

TEST(Matcher, RejectsAlreadyFusedActivation)
{
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w = b.weight({4, 4});
    const Edge m = b.matmul(x, w, Activation::relu); // already fused
    const Graph host = b.finish({b.relu(m)});
    EXPECT_TRUE(find_matches(host, relu_matmul_pattern()).empty());
}

TEST(Matcher, CommutativeOpsMatchBothOrders)
{
    // Pattern: add(relu(x), y). Host has the relu as the *second* operand.
    Pattern p;
    p.name = "test-commute";
    Graph_builder src;
    const Edge x = src.input({4, 4});
    const Edge y = src.input({4, 4});
    p.source = src.finish({src.add(src.relu(x), y)});
    Graph_builder tgt;
    const Edge tx = tgt.input({4, 4});
    const Edge ty = tgt.input({4, 4});
    p.target = tgt.finish({tgt.add(tgt.relu(tx), ty)});
    p.finalise();

    Graph_builder b;
    const Edge hx = b.input({4, 4});
    const Edge hy = b.input({4, 4});
    const Graph host = b.finish({b.add(hy, b.relu(hx))});
    EXPECT_FALSE(find_matches(host, p).empty());
}

TEST(Matcher, InjectiveOnInternalNodes)
{
    // Pattern wants two *distinct* relu nodes; a host with a single relu
    // used twice must not match.
    Pattern p;
    p.name = "test-two-relus";
    Graph_builder src;
    const Edge x = src.input({4, 4});
    const Edge y = src.input({4, 4});
    p.source = src.finish({src.add(src.relu(x), src.relu(y))});
    Graph_builder tgt;
    const Edge tx = tgt.input({4, 4});
    const Edge ty = tgt.input({4, 4});
    p.target = tgt.finish({tgt.relu(tgt.add(tx, ty))});
    p.finalise();

    Graph_builder b;
    const Edge hx = b.input({4, 4});
    const Edge r = b.relu(hx);
    const Graph host = b.finish({b.add(r, r)});
    EXPECT_TRUE(find_matches(host, p).empty());
}

TEST(Matcher, SharedVariableMustBindConsistently)
{
    // Pattern add(matmul(A,B), matmul(A,C)): both matmuls share A.
    auto patterns = curated_patterns();
    const auto it = std::find_if(patterns.begin(), patterns.end(),
                                 [](const Pattern& p) { return p.name == "matmul-factor-rhs"; });
    ASSERT_NE(it, patterns.end());

    // Host where the two matmuls have *different* left operands: no match.
    Graph_builder b;
    const Edge a1 = b.input({4, 4});
    const Edge a2 = b.input({4, 4});
    const Edge w1 = b.weight({4, 4});
    const Edge w2 = b.weight({4, 4});
    const Graph host = b.finish({b.add(b.matmul(a1, w1), b.matmul(a2, w2))});
    EXPECT_TRUE(find_matches(host, *it).empty());
}

// ---------------------------------------------------------------------------
// Application behaviour
// ---------------------------------------------------------------------------

TEST(ApplyMatch, FusesActivationIntoMatmul)
{
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w = b.weight({4, 4});
    const Graph host = b.finish({b.relu(b.matmul(x, w))});

    const Pattern p = relu_matmul_pattern();
    const auto matches = find_matches(host, p);
    ASSERT_EQ(matches.size(), 1u);
    const auto transformed = apply_match(host, p, matches.front());
    ASSERT_TRUE(transformed.has_value());

    // One matmul with fused relu; no standalone relu nodes; one node fewer.
    int matmuls = 0;
    int relus = 0;
    for (const Node_id id : transformed->node_ids()) {
        if (transformed->node(id).kind == Op_kind::matmul) {
            ++matmuls;
            EXPECT_EQ(transformed->node(id).params.activation, Activation::relu);
        }
        if (transformed->node(id).kind == Op_kind::relu) ++relus;
    }
    EXPECT_EQ(matmuls, 1);
    EXPECT_EQ(relus, 0);
    EXPECT_EQ(transformed->size(), host.size() - 1);
    expect_equivalent(host, *transformed, 7);
}

TEST(ApplyMatch, VariableOutputEliminatesNode)
{
    Graph_builder b;
    const Edge x = b.input({3, 3});
    const Graph host = b.finish({b.identity(x)});
    auto patterns = curated_patterns();
    const auto it = std::find_if(patterns.begin(), patterns.end(),
                                 [](const Pattern& p) { return p.name == "identity-elim"; });
    ASSERT_NE(it, patterns.end());
    const auto matches = find_matches(host, *it);
    ASSERT_EQ(matches.size(), 1u);
    const auto transformed = apply_match(host, *it, matches.front());
    ASSERT_TRUE(transformed.has_value());
    EXPECT_EQ(transformed->size(), 1u); // only the input remains
    expect_equivalent(host, *transformed, 8);
}

TEST(PatternRule, ApplyAllEnumeratesAllSites)
{
    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w1 = b.weight({4, 4});
    const Edge w2 = b.weight({4, 4});
    const Edge y1 = b.relu(b.matmul(x, w1));
    const Edge y2 = b.relu(b.matmul(y1, w2));
    const Graph host = b.finish({y2});

    const Pattern_rule rule(relu_matmul_pattern());
    const auto candidates = rule.apply_all(host);
    EXPECT_EQ(candidates.size(), 2u);
    for (const Graph& g : candidates) {
        EXPECT_EQ(g.size(), host.size() - 1);
        expect_equivalent(host, g, 9);
    }
}

// ---------------------------------------------------------------------------
// Bespoke rules
// ---------------------------------------------------------------------------

TEST(MergeMatmul, MergesSharedLhsAndPreservesSemantics)
{
    Graph_builder b;
    const Edge x = b.input({2, 8});
    const Edge w1 = b.weight({8, 3});
    const Edge w2 = b.weight({8, 5});
    const Edge q = b.matmul(x, w1);
    const Edge k = b.matmul(x, w2);
    const Graph host = b.finish({q, k});

    const auto rule = make_merge_matmul_shared_lhs_rule();
    const auto candidates = rule->apply_all(host);
    ASSERT_EQ(candidates.size(), 1u);
    const Graph& merged = candidates.front();

    int matmuls = 0;
    int splits = 0;
    for (const Node_id id : merged.node_ids()) {
        if (merged.node(id).kind == Op_kind::matmul) ++matmuls;
        if (merged.node(id).kind == Op_kind::split) ++splits;
    }
    EXPECT_EQ(matmuls, 1);
    EXPECT_EQ(splits, 1);
    expect_equivalent(host, merged, 10);
}

TEST(MergeMatmul, RepeatedApplicationFusesQkv)
{
    // Three projections from the same input (Q, K, V) merge into one matmul
    // after two rule applications.
    Graph_builder b;
    const Edge x = b.input({2, 8});
    const Edge wq = b.weight({8, 4});
    const Edge wk = b.weight({8, 4});
    const Edge wv = b.weight({8, 4});
    const Graph host = b.finish({b.matmul(x, wq), b.matmul(x, wk), b.matmul(x, wv)});

    const auto rule = make_merge_matmul_shared_lhs_rule();
    auto first = rule->apply_all(host);
    ASSERT_FALSE(first.empty());
    auto second = rule->apply_all(first.front());
    ASSERT_FALSE(second.empty());

    int matmuls = 0;
    for (const Node_id id : second.front().node_ids())
        if (second.front().node(id).kind == Op_kind::matmul) ++matmuls;
    EXPECT_EQ(matmuls, 1);
    expect_equivalent(host, second.front(), 11);
}

TEST(MergeMatmul, SkipsWhenMergeWouldCreateCycle)
{
    // m2 consumes a function of m1, so merging them is cyclic.
    Graph_builder b;
    const Edge x = b.input({4, 4});
    const Edge w = b.weight({4, 4});
    const Edge m1 = b.matmul(x, w);
    const Edge m2 = b.matmul(x, b.relu(m1));
    const Graph host = b.finish({m2});
    const auto rule = make_merge_matmul_shared_lhs_rule();
    EXPECT_TRUE(rule->apply_all(host).empty());
}

TEST(MergeConv, MergesSharedInputFilters)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 8, 8});
    const Edge w1 = b.weight({4, 3, 3, 3});
    const Edge w2 = b.weight({2, 3, 3, 3});
    const Edge c1 = b.conv2d(x, w1, 1, 1);
    const Edge c2 = b.conv2d(x, w2, 1, 1);
    const Graph host = b.finish({c1, c2});

    const auto rule = make_merge_conv_shared_input_rule();
    const auto candidates = rule->apply_all(host);
    ASSERT_EQ(candidates.size(), 1u);
    int convs = 0;
    for (const Node_id id : candidates.front().node_ids())
        if (candidates.front().node(id).kind == Op_kind::conv2d) ++convs;
    EXPECT_EQ(convs, 1);
    expect_equivalent(host, candidates.front(), 12, 1e-3F);
}

TEST(MergeConv, RequiresIdenticalGeometry)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 8, 8});
    const Edge w1 = b.weight({4, 3, 3, 3});
    const Edge w2 = b.weight({2, 3, 3, 3});
    const Edge c1 = b.conv2d(x, w1, 1, 1);
    const Edge c2 = b.conv2d(x, w2, 2, 1); // different stride
    const Graph host = b.finish({c1, c2});
    EXPECT_TRUE(make_merge_conv_shared_input_rule()->apply_all(host).empty());
}

TEST(EliminateSplitConcat, RemovesRoundTrip)
{
    Graph_builder b;
    const Edge x = b.input({2, 6});
    const auto parts = b.split(x, 1, {2, 4});
    const Edge joined = b.concat(1, {parts[0], parts[1]});
    const Graph host = b.finish({b.relu(joined)});

    const auto rule = make_eliminate_split_concat_rule();
    const auto candidates = rule->apply_all(host);
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates.front().size(), 2u); // input + relu
    expect_equivalent(host, candidates.front(), 13);
}

TEST(EliminateSplitConcat, RequiresSameAxisAndFullOrder)
{
    Graph_builder b;
    const Edge x = b.input({2, 6});
    const auto parts = b.split(x, 1, {2, 4});
    const Edge swapped = b.concat(1, {parts[1], parts[0]}); // reordered
    const Graph host = b.finish({swapped});
    EXPECT_TRUE(make_eliminate_split_concat_rule()->apply_all(host).empty());
}

TEST(EliminateConcatSplit, RewiresPieces)
{
    Graph_builder b;
    const Edge p = b.input({2, 3});
    const Edge q = b.input({2, 4});
    const Edge joined = b.concat(1, {p, q});
    const auto parts = b.split(joined, 1, {3, 4});
    const Graph host = b.finish({b.relu(parts[0]), b.tanh(parts[1])});

    const auto rule = make_eliminate_concat_split_rule();
    const auto candidates = rule->apply_all(host);
    ASSERT_EQ(candidates.size(), 1u);
    expect_equivalent(host, candidates.front(), 14);
    // concat and split both gone.
    for (const Node_id id : candidates.front().node_ids()) {
        EXPECT_NE(candidates.front().node(id).kind, Op_kind::concat);
        EXPECT_NE(candidates.front().node(id).kind, Op_kind::split);
    }
}

TEST(FoldBatchNorm, FoldsIntoConvWeights)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 6, 6});
    const Edge w = b.weight({5, 3, 3, 3});
    const Edge conv = b.conv2d(x, w, 1, 1);
    const Edge bn = b.batch_norm(conv, 5);
    const Graph host = b.finish({bn});

    const auto rule = make_fold_batch_norm_rule();
    const auto candidates = rule->apply_all(host);
    ASSERT_EQ(candidates.size(), 1u);
    int bns = 0;
    for (const Node_id id : candidates.front().node_ids())
        if (candidates.front().node(id).kind == Op_kind::batch_norm) ++bns;
    EXPECT_EQ(bns, 0);
    expect_equivalent(host, candidates.front(), 15, 1e-3F);
}

TEST(FoldBatchNorm, SkipsFusedConvAndSharedConvOutput)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 6, 6});
    const Edge w = b.weight({5, 3, 3, 3});
    const Edge conv = b.conv2d(x, w, 1, 1, Activation::relu); // fused act
    const Edge bn = b.batch_norm(conv, 5);
    const Graph host = b.finish({bn});
    EXPECT_TRUE(make_fold_batch_norm_rule()->apply_all(host).empty());

    Graph_builder b2;
    const Edge x2 = b2.input({1, 3, 6, 6});
    const Edge w2 = b2.weight({5, 3, 3, 3});
    const Edge conv2 = b2.conv2d(x2, w2, 1, 1);
    const Edge bn2 = b2.batch_norm(conv2, 5);
    const Graph host2 = b2.finish({bn2, b2.relu(conv2)}); // conv shared
    EXPECT_TRUE(make_fold_batch_norm_rule()->apply_all(host2).empty());
}

TEST(MergeConvAddEnlarge, MergesMixedKernelSizes)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 8, 8});
    const Edge w3 = b.weight({4, 3, 3, 3});
    const Edge w1 = b.weight({4, 3, 1, 1});
    const Edge c3 = b.conv2d(x, w3, 1, 1);
    const Edge c1 = b.conv2d(x, w1, 1, 0);
    const Graph host = b.finish({b.add(c3, c1)});

    const auto rule = make_merge_conv_add_enlarge_rule();
    const auto candidates = rule->apply_all(host);
    ASSERT_EQ(candidates.size(), 1u);
    int convs = 0;
    int enlarges = 0;
    for (const Node_id id : candidates.front().node_ids()) {
        if (candidates.front().node(id).kind == Op_kind::conv2d) ++convs;
        if (candidates.front().node(id).kind == Op_kind::enlarge) ++enlarges;
    }
    EXPECT_EQ(convs, 1);
    EXPECT_EQ(enlarges, 1);
    expect_equivalent(host, candidates.front(), 16, 1e-3F);
}

TEST(MergeConvAddEnlarge, RejectsMisalignedPadding)
{
    Graph_builder b;
    const Edge x = b.input({1, 3, 8, 8});
    const Edge w3 = b.weight({4, 3, 3, 3});
    const Edge w1 = b.weight({4, 3, 1, 1});
    const Edge c3 = b.conv2d(x, w3, 1, 1);
    const Edge c1 = b.conv2d(x, w1, 1, 1); // pad mismatch (same output shape
                                           // only when spatial dims align)
    // 8x8 with pad 1 and 1x1 kernel -> 10x10; add() shape inference fails in
    // the builder, so construct the mismatch at the rule level instead:
    // use stride-2 convs with inconsistent pads that still collide in shape.
    (void)c3;
    (void)c1;
    Graph_builder b2;
    const Edge x2 = b2.input({1, 3, 9, 9});
    const Edge wa = b2.weight({4, 3, 3, 3});
    const Edge wb = b2.weight({4, 3, 1, 1});
    const Edge ca = b2.conv2d(x2, wa, 2, 1); // out 5x5
    const Edge cb = b2.conv2d(x2, wb, 2, 0); // out 5x5, pad delta != 1
    const Graph host = b2.finish({b2.add(ca, cb)});
    // pad_a - pad_b == 1 == (3-1)/2, so this one IS mergeable; check the
    // stride guard instead with differing strides.
    EXPECT_EQ(make_merge_conv_add_enlarge_rule()->apply_all(host).size(), 1u);

    Graph_builder b3;
    const Edge x3 = b3.input({1, 3, 8, 8});
    const Edge wc = b3.weight({4, 3, 3, 3});
    const Edge wd = b3.weight({4, 3, 3, 3});
    const Edge cc = b3.conv2d(x3, wc, 1, 1);
    const Edge cd = b3.conv2d(x3, wd, 1, 1, Activation::relu); // fused act
    const Graph host3 = b3.finish({b3.add(cc, cd)});
    EXPECT_TRUE(make_merge_conv_add_enlarge_rule()->apply_all(host3).empty());
}

// ---------------------------------------------------------------------------
// Corpus / serialisation / generator
// ---------------------------------------------------------------------------

TEST(Corpus, HasUniqueNamesAndExpectedSize)
{
    const auto names = standard_rule_names();
    EXPECT_GE(names.size(), 30u);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Serialisation, RoundTripsCuratedPatterns)
{
    const auto patterns = curated_patterns();
    std::ostringstream os;
    serialise_patterns(os, patterns);
    std::istringstream is(os.str());
    const auto loaded = deserialise_patterns(is);
    ASSERT_EQ(loaded.size(), patterns.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        EXPECT_EQ(loaded[i].name, patterns[i].name);
        EXPECT_EQ(loaded[i].source.canonical_hash(), patterns[i].source.canonical_hash());
        EXPECT_EQ(loaded[i].target.canonical_hash(), patterns[i].target.canonical_hash());
        EXPECT_EQ(loaded[i].param_modes.size(), patterns[i].param_modes.size());
        EXPECT_EQ(loaded[i].param_transfers.size(), patterns[i].param_transfers.size());
    }
}

TEST(Serialisation, LoadedRulesBehaveIdentically)
{
    const auto patterns = curated_patterns();
    std::ostringstream os;
    serialise_patterns(os, patterns);
    std::istringstream is(os.str());
    auto loaded = deserialise_patterns(is);

    Graph_builder b;
    const Edge x = b.input({2, 4});
    const Edge w = b.weight({4, 4});
    const Graph host = b.finish({b.relu(b.matmul(x, w))});

    const auto find = [](const std::vector<Pattern>& ps, const std::string& name) {
        return std::find_if(ps.begin(), ps.end(),
                            [&name](const Pattern& p) { return p.name == name; });
    };
    const auto orig = find(patterns, "fuse-matmul-relu");
    const auto copy = find(loaded, "fuse-matmul-relu");
    ASSERT_NE(orig, patterns.end());
    ASSERT_NE(copy, loaded.end());

    const auto c1 = Pattern_rule(*orig).apply_all(host);
    const auto c2 = Pattern_rule(*copy).apply_all(host);
    ASSERT_EQ(c1.size(), 1u);
    ASSERT_EQ(c2.size(), 1u);
    EXPECT_EQ(c1.front().canonical_hash(), c2.front().canonical_hash());
}

TEST(Generator, ProducesVerifiedRules)
{
    Generator_config cfg;
    cfg.max_ops = 2;
    cfg.extra_sampled_programs = 100;
    cfg.max_rules = 24;
    const Generation_report report = generate_algebraic_rules(cfg);
    EXPECT_GT(report.programs_enumerated, 500);
    EXPECT_GT(report.fingerprint_groups, 0);
    EXPECT_FALSE(report.patterns.empty());
    EXPECT_EQ(report.pairs_verified, static_cast<int>(report.patterns.size()));
}

TEST(Generator, EmittedRulesPreserveSemantics)
{
    Generator_config cfg;
    cfg.max_ops = 2;
    cfg.extra_sampled_programs = 50;
    cfg.max_rules = 12;
    const Generation_report report = generate_algebraic_rules(cfg);
    for (const Pattern& p : report.patterns) {
        Pattern pattern = p; // non-const for finalise state reuse
        const Graph& host = pattern.source;
        const auto matches = find_matches(host, pattern);
        ASSERT_FALSE(matches.empty()) << p.name;
        const auto transformed = apply_match(host, pattern, matches.front());
        ASSERT_TRUE(transformed.has_value()) << p.name;
        expect_equivalent(host, *transformed, 4242, 1e-3F);
    }
}

TEST(Generator, IsDeterministicForFixedSeed)
{
    Generator_config cfg;
    cfg.max_ops = 2;
    cfg.extra_sampled_programs = 50;
    cfg.max_rules = 8;
    const auto a = generate_algebraic_rules(cfg);
    const auto b = generate_algebraic_rules(cfg);
    ASSERT_EQ(a.patterns.size(), b.patterns.size());
    for (std::size_t i = 0; i < a.patterns.size(); ++i) {
        EXPECT_EQ(a.patterns[i].source.canonical_hash(), b.patterns[i].source.canonical_hash());
        EXPECT_EQ(a.patterns[i].target.canonical_hash(), b.patterns[i].target.canonical_hash());
    }
}

TEST(Generator, GeneratedRulesSerialise)
{
    Generator_config cfg;
    cfg.max_ops = 2;
    cfg.extra_sampled_programs = 0;
    cfg.max_rules = 8;
    const auto report = generate_algebraic_rules(cfg);
    std::ostringstream os;
    serialise_patterns(os, report.patterns);
    std::istringstream is(os.str());
    const auto loaded = deserialise_patterns(is);
    EXPECT_EQ(loaded.size(), report.patterns.size());
}

} // namespace
} // namespace xrl
