#include <gtest/gtest.h>

#include <unordered_map>

#include "models/models.h"

namespace xrl {
namespace {

std::unordered_map<Op_kind, int> op_histogram(const Graph& g)
{
    std::unordered_map<Op_kind, int> histogram;
    for (const Node_id id : g.node_ids()) ++histogram[g.node(id).kind];
    return histogram;
}

TEST(Models, DenseLayerExampleMatchesFigure1)
{
    const Graph g = make_dense_layer_example();
    const auto h = op_histogram(g);
    EXPECT_EQ(h.at(Op_kind::matmul), 1);
    EXPECT_EQ(h.at(Op_kind::add), 1);
    EXPECT_EQ(h.at(Op_kind::relu), 1);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, InceptionHasConcatBranches)
{
    const Graph g = make_inception_v3(Scale::smoke);
    const auto h = op_histogram(g);
    EXPECT_GT(h.at(Op_kind::concat), 3);
    EXPECT_GT(h.at(Op_kind::conv2d), 20);
    EXPECT_GT(h.at(Op_kind::batch_norm), 15);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, SqueezenetFireModulesConcatExpansions)
{
    const Graph g = make_squeezenet(Scale::smoke);
    const auto h = op_histogram(g);
    EXPECT_GE(h.at(Op_kind::concat), 4);
    EXPECT_GT(h.at(Op_kind::conv2d), 10);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, ResnextUsesGroupedConvolutions)
{
    const Graph g = make_resnext50(Scale::smoke);
    bool found_grouped = false;
    for (const Node_id id : g.node_ids()) {
        const Node& n = g.node(id);
        if (n.kind == Op_kind::conv2d && n.params.groups > 1) found_grouped = true;
    }
    EXPECT_TRUE(found_grouped);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, ResnetHasResidualAdds)
{
    const Graph g = make_resnet18(Scale::smoke);
    const auto h = op_histogram(g);
    EXPECT_GE(h.at(Op_kind::add), 4);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, BertHasAttentionStructure)
{
    const Graph g = make_bert(Scale::smoke, 32);
    const auto h = op_histogram(g);
    EXPECT_GE(h.at(Op_kind::softmax), 3);     // one per layer
    EXPECT_GE(h.at(Op_kind::matmul), 15);     // QKV + scores + context + FFN
    EXPECT_GE(h.at(Op_kind::layer_norm), 6);
    EXPECT_EQ(h.at(Op_kind::embedding), 1);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, VitPatchEmbedsThenTransforms)
{
    const Graph g = make_vit(Scale::smoke, 64);
    const auto h = op_histogram(g);
    EXPECT_EQ(h.at(Op_kind::conv2d), 1);  // patch embedding only
    EXPECT_GE(h.at(Op_kind::softmax), 3);
    EXPECT_GE(h.at(Op_kind::transpose), 1);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, DalleIsElementwiseHeavy)
{
    const Graph g = make_dalle(Scale::smoke, 32);
    const auto h = op_histogram(g);
    EXPECT_GE(h.at(Op_kind::mul) + h.at(Op_kind::scale) + h.at(Op_kind::gelu), 9);
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, TransducerHasJointNetwork)
{
    const Graph g = make_transformer_transducer(Scale::smoke, 32);
    const auto h = op_histogram(g);
    EXPECT_GE(h.at(Op_kind::tanh), 1);
    EXPECT_GE(h.at(Op_kind::softmax), 4); // per-layer attention + output head
    EXPECT_NO_THROW(g.validate());
}

TEST(Models, PaperScaleIsLargerThanSmoke)
{
    EXPECT_GT(make_bert(Scale::paper, 32).size(), make_bert(Scale::smoke, 32).size());
    EXPECT_GT(make_inception_v3(Scale::paper).size(), make_inception_v3(Scale::smoke).size());
}

TEST(Models, RegistryListsSevenEvaluationModels)
{
    const auto specs = evaluation_models(Scale::smoke);
    ASSERT_EQ(specs.size(), 7u);
    EXPECT_EQ(specs[0].name, "InceptionV3");
    EXPECT_EQ(specs[0].type, "convolutional");
    EXPECT_EQ(specs.back().name, "ViT");
    EXPECT_EQ(specs.back().type, "transformer");
    for (const auto& spec : specs) {
        const Graph g = spec.build();
        EXPECT_GT(g.size(), 10u) << spec.name;
        EXPECT_NO_THROW(g.validate()) << spec.name;
    }
}

TEST(Models, Table1SetExcludesVit)
{
    const auto specs = table1_models(Scale::smoke);
    EXPECT_EQ(specs.size(), 6u);
    for (const auto& spec : specs) EXPECT_NE(spec.name, "ViT");
}

// Figure 7: builders accept different primary dimensions (shape
// generalisation inputs).
class Model_shape_sweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Model_shape_sweep, InceptionBuildsAtImageSize)
{
    const Graph g = make_inception_v3(Scale::smoke, GetParam());
    EXPECT_NO_THROW(g.validate());
}

TEST_P(Model_shape_sweep, DalleBuildsAtSequenceLength)
{
    const Graph g = make_dalle(Scale::smoke, GetParam());
    EXPECT_NO_THROW(g.validate());
}

INSTANTIATE_TEST_SUITE_P(Sizes, Model_shape_sweep, ::testing::Values(32, 64, 96));

} // namespace
} // namespace xrl
