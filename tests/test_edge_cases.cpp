// Edge-case and failure-injection tests across modules.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/agent.h"
#include "core/checkpoint.h"
#include "env/environment.h"
#include "ir/builder.h"
#include "ir/executor.h"
#include "models/models.h"
#include "nn/adam.h"
#include "optimizers/tensat/egraph.h"
#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {
namespace {

// ---------------------------------------------------------------------------
// Autograd corner cases
// ---------------------------------------------------------------------------

TEST(AutogradEdge, BackwardRequiresScalarLoss)
{
    Tape tape;
    const Var v = tape.constant(Tensor(Shape{2, 2}));
    EXPECT_THROW(tape.backward(v), Contract_violation);
}

TEST(AutogradEdge, LogRejectsNonPositive)
{
    Tape tape;
    const Var v = tape.constant(Tensor(Shape{1, 1}, {-1.0F}));
    EXPECT_THROW(tape.log(v), Contract_violation);
}

TEST(AutogradEdge, GatherRejectsOutOfRangeRow)
{
    Tape tape;
    const Var v = tape.constant(Tensor(Shape{2, 3}));
    EXPECT_THROW(tape.gather_rows(v, {2}), Contract_violation);
}

TEST(AutogradEdge, SegmentSumRejectsBadSegmentId)
{
    Tape tape;
    const Var v = tape.constant(Tensor(Shape{2, 3}));
    EXPECT_THROW(tape.segment_sum(v, {0, 5}, 2), Contract_violation);
}

TEST(AutogradEdge, EmptyRowConcatWorks)
{
    Tape tape;
    const Var empty = tape.gather_rows(tape.constant(Tensor(Shape{3, 4})), {});
    const Var row = tape.constant(Tensor::full({1, 4}, 2.0F));
    const Var joined = tape.concat_rows(empty, row);
    EXPECT_EQ(tape.value(joined).shape(), (Shape{1, 4}));
    EXPECT_EQ(tape.value(joined).at(0), 2.0F);
}

TEST(AutogradEdge, ManyOpsOnOneTapeStaysConsistent)
{
    // Regression guard for the reallocation bug: sizes captured from
    // dangling references after push(). Chain enough ops to force several
    // vector growths.
    Rng rng(99);
    Parameter p(Tensor::random_uniform({4, 4}, rng));
    Tape tape;
    Var v = tape.param(p);
    for (int i = 0; i < 200; ++i) {
        v = tape.concat_cols(v, v);
        v = tape.gather_rows(v, {0, 1, 2, 3});
        // Keep width bounded: take a matmul back down to 4 columns.
        Tensor reduce(Shape{tape.value(v).dim(1), 4});
        for (std::int64_t r = 0; r < reduce.dim(0); ++r) reduce.at(r * 4 + r % 4) = 0.5F;
        v = tape.matmul(v, tape.constant(reduce));
    }
    const Var loss = tape.sum_all(v);
    EXPECT_NO_THROW(tape.backward(loss));
}

// ---------------------------------------------------------------------------
// Checkpoint failure injection
// ---------------------------------------------------------------------------

TEST(CheckpointEdge, RejectsWrongParameterCount)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "xrl_ckpt_count.bin").string();
    Parameter a(Tensor(Shape{2, 2}));
    Parameter b(Tensor(Shape{2, 2}));
    save_parameters(path, {&a});
    EXPECT_THROW(load_parameters(path, {&a, &b}), Contract_violation);
    std::filesystem::remove(path);
}

TEST(CheckpointEdge, RejectsShapeMismatch)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "xrl_ckpt_shape.bin").string();
    Parameter a(Tensor(Shape{2, 2}));
    save_parameters(path, {&a});
    Parameter wrong(Tensor(Shape{4, 1}));
    EXPECT_THROW(load_parameters(path, {&wrong}), Contract_violation);
    std::filesystem::remove(path);
}

TEST(CheckpointEdge, RejectsCorruptMagic)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "xrl_ckpt_magic.bin").string();
    {
        std::ofstream os(path, std::ios::binary);
        const std::uint64_t garbage = 0xdeadbeefULL;
        os.write(reinterpret_cast<const char*>(&garbage), sizeof(garbage));
        os.write(reinterpret_cast<const char*>(&garbage), sizeof(garbage));
    }
    Parameter a(Tensor(Shape{1, 1}));
    EXPECT_THROW(load_parameters(path, {&a}), Contract_violation);
    std::filesystem::remove(path);
}

TEST(CheckpointEdge, MissingFileThrows)
{
    Parameter a(Tensor(Shape{1, 1}));
    EXPECT_THROW(load_parameters("/nonexistent/xrl.bin", {&a}), Contract_violation);
}

// ---------------------------------------------------------------------------
// E-graph extraction details
// ---------------------------------------------------------------------------

TEST(EgraphEdge, ExtractionPrefersCheaperEquivalent)
{
    // Build relu(relu(x)) and union its class with relu(x); extraction must
    // pick the single-relu derivation.
    E_graph eg;
    E_node x;
    x.kind = Op_kind::input;
    x.leaf_id = 0;
    x.leaf_shape = {4, 4};
    const Eclass_id cx = eg.add(x);
    E_node r1;
    r1.kind = Op_kind::relu;
    r1.children = {cx};
    const Eclass_id cr1 = eg.add(r1);
    E_node r2;
    r2.kind = Op_kind::relu;
    r2.children = {cr1};
    const Eclass_id cr2 = eg.add(r2);
    eg.merge(cr1, cr2);
    eg.rebuild();

    const Cost_model cost(gtx1080_profile());
    const auto extracted = extract_best(eg, {eg.find(cr2)}, cost);
    ASSERT_TRUE(extracted.has_value());
    int relus = 0;
    for (const Node_id id : extracted->node_ids())
        if (extracted->node(id).kind == Op_kind::relu) ++relus;
    EXPECT_EQ(relus, 1);
}

TEST(EgraphEdge, SharedSubgraphExtractsOnce)
{
    // Diamond: two consumers of the same class materialise one node.
    Graph_builder b;
    const Edge x = b.input({4, 4});
    const Edge r = b.relu(x);
    const Graph g = b.finish({b.add(r, r)});
    const Egraph_encoding enc = encode_graph(g);
    const Cost_model cost(gtx1080_profile());
    const auto extracted = extract_best(enc.egraph, enc.roots, cost);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_EQ(extracted->size(), g.size());
}

// ---------------------------------------------------------------------------
// Environment edges
// ---------------------------------------------------------------------------

TEST(EnvironmentEdge, GraphWithNoRewritesStartsDone)
{
    Graph_builder b;
    const Edge x = b.input({4, 4});
    const Graph g = b.finish({b.softmax(x)}); // nothing in the corpus matches
    const Rule_set rules = standard_rule_corpus();
    E2e_simulator sim(gtx1080_profile(), 3);
    Environment env(g, rules, sim);
    EXPECT_TRUE(env.done());
    EXPECT_TRUE(env.candidates().empty());
}

TEST(EnvironmentEdge, StepAfterDoneThrows)
{
    Graph_builder b;
    const Edge x = b.input({4, 4});
    const Graph g = b.finish({b.softmax(x)});
    const Rule_set rules = standard_rule_corpus();
    E2e_simulator sim(gtx1080_profile(), 3);
    Environment env(g, rules, sim);
    EXPECT_THROW(env.step(0), Contract_violation);
}

TEST(EnvironmentEdge, TruncationCountsOverflowCandidates)
{
    Env_config config;
    config.max_candidates = 2; // force truncation on a rich graph
    const Rule_set rules = standard_rule_corpus();
    E2e_simulator sim(gtx1080_profile(), 3);
    Environment env(make_bert(Scale::smoke, 16), rules, sim, config);
    EXPECT_EQ(env.candidates().size(), 2u);
    EXPECT_GT(env.truncated_candidates(), 0u);
}

// ---------------------------------------------------------------------------
// Executor / model edges
// ---------------------------------------------------------------------------

TEST(ExecutorEdge, BatchedMatmulThroughGraph)
{
    Graph_builder b;
    const Edge a = b.input({2, 3, 4}, "a");
    const Edge c = b.input({2, 4, 5}, "c");
    const Graph g = b.finish({b.matmul(a, c)});
    Rng rng(7);
    const auto outs = execute(g, random_bindings(g, rng));
    EXPECT_EQ(outs[0].shape(), (Shape{2, 3, 5}));
}

TEST(ExecutorEdge, EnlargeThenConvExecutes)
{
    Graph_builder b;
    const Edge x = b.input({1, 2, 5, 5}, "x");
    const Edge w = b.weight({3, 2, 1, 1});
    const Edge big = b.enlarge(w, 3, 3);
    const Graph g = b.finish({b.conv2d(x, big, 1, 1)});
    Rng rng(8);
    const auto outs = execute(g, random_bindings(g, rng));
    EXPECT_EQ(outs[0].shape(), (Shape{1, 3, 5, 5}));
}

TEST(ModelsEdge, VitRequiresPatchAlignedImages)
{
    EXPECT_THROW(make_vit(Scale::smoke, 50), Contract_violation); // 50 % 16 != 0
}

TEST(AdamEdge, StepWithZeroGradIsNoOpAfterWarmup)
{
    Parameter p(Tensor::full({1, 1}, 1.0F));
    Adam_config config;
    config.learning_rate = 0.1;
    Adam adam({&p}, config);
    // No gradient accumulated: moments stay zero, value unchanged.
    adam.step();
    EXPECT_FLOAT_EQ(p.value.at(0), 1.0F);
}

TEST(AgentEdge, ZeroCandidateStateStillScoresNoop)
{
    Agent_config config;
    config.gnn.hidden_dim = 8;
    config.gnn.global_dim = 8;
    config.gnn.num_gat_layers = 1;
    config.head_hidden = {8};
    config.max_candidates = 7;
    Agent agent(config, 1);
    const Graph g = make_dense_layer_example();
    const Encoded_graph state = encode_meta_graph(g, {}); // no candidates
    std::vector<std::uint8_t> mask(8, 0);
    mask[7] = 1; // only No-Op valid
    Rng rng(2);
    const auto decision = agent.act(state, mask, rng);
    EXPECT_EQ(decision.action, 7);
}

} // namespace
} // namespace xrl
