// Cross-module integration tests: graph import/export, optimiser
// pipelines over the model zoo, rule-corpus sweeps, and end-to-end
// consistency properties.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "cost/cost_model.h"
#include "env/environment.h"
#include "cost/e2e_simulator.h"
#include "ir/builder.h"
#include "ir/executor.h"
#include "ir/graph_io.h"
#include "models/models.h"
#include "optimizers/taso/taso_optimizer.h"
#include "optimizers/tensat/tensat_optimizer.h"
#include "rules/bespoke_rules.h"
#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {
namespace {

Node_id find_by_name(const Graph& g, const std::string& name)
{
    for (const Node_id id : g.node_ids())
        if (g.node(id).name == name) return id;
    return invalid_node;
}

// ---------------------------------------------------------------------------
// Graph text import/export
// ---------------------------------------------------------------------------

TEST(GraphIo, RoundTripsBuilderGraphExactly)
{
    const Graph g = make_dense_layer_example();
    std::ostringstream os;
    serialise_graph_text(os, g);
    std::istringstream is(os.str());
    const Graph loaded = deserialise_graph_text(is);
    EXPECT_EQ(loaded.size(), g.size());
    EXPECT_EQ(loaded.canonical_hash(), g.canonical_hash());
}

TEST(GraphIo, SerialisationIsAFixpoint)
{
    const Graph g = make_bert(Scale::smoke, 16);
    std::ostringstream first;
    serialise_graph_text(first, g);
    std::istringstream is(first.str());
    const Graph loaded = deserialise_graph_text(is);
    std::ostringstream second;
    serialise_graph_text(second, loaded);
    EXPECT_EQ(first.str(), second.str());
}

TEST(GraphIo, PreservesNamesAndShapes)
{
    const Graph g = make_dense_layer_example();
    std::ostringstream os;
    serialise_graph_text(os, g);
    std::istringstream is(os.str());
    const Graph loaded = deserialise_graph_text(is);
    const Node_id x = find_by_name(loaded, "x");
    ASSERT_NE(x, invalid_node);
    EXPECT_EQ(loaded.node(x).output_shapes.front(), (Shape{4, 32}));
}

TEST(GraphIo, RoundTripsConstants)
{
    Graph_builder b;
    const Edge c = b.constant(Tensor(Shape{2, 2}, {1.5F, -2.0F, 0.0F, 3.25F}));
    const Graph g = b.finish({b.relu(c)});
    std::ostringstream os;
    serialise_graph_text(os, g);
    std::istringstream is(os.str());
    const Graph loaded = deserialise_graph_text(is);
    const auto outs = execute(loaded, {});
    EXPECT_EQ(outs[0].values(), (std::vector<float>{1.5F, 0.0F, 0.0F, 3.25F}));
}

TEST(GraphIo, RoundTripExecutesIdentically)
{
    // Save/load a model whose transformed form contains constants (batch
    // norm folds add an epsilon literal), then execute with name-matched
    // inputs.
    Graph_builder b;
    const Edge x = b.input({1, 3, 6, 6}, "x");
    const Edge w = b.weight({4, 3, 3, 3});
    const Edge bn = b.batch_norm(b.conv2d(x, w, 1, 1), 4);
    const Graph g = b.finish({bn});

    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    Taso_config config;
    config.budget = 5;
    const Taso_result optimised = optimise_taso(g, rules, cost, config);

    const std::string path =
        (std::filesystem::temp_directory_path() / "xrl_graph_roundtrip.txt").string();
    save_graph(path, optimised.best_graph);
    const Graph loaded = load_graph(path);
    std::filesystem::remove(path);

    // The loaded graph has remapped ids, so execute with weights fixed by a
    // shared seed won't match; structural equality is the contract here.
    EXPECT_EQ(loaded.size(), optimised.best_graph.size());
    std::ostringstream a;
    std::ostringstream c2;
    serialise_graph_text(a, optimised.best_graph);
    serialise_graph_text(c2, loaded);
    EXPECT_EQ(a.str(), c2.str());
}

TEST(GraphIo, RejectsMalformedInput)
{
    {
        std::istringstream is("not-a-graph v1");
        EXPECT_THROW(deserialise_graph_text(is), Contract_violation);
    }
    {
        std::istringstream is("xrlflow-graph v2");
        EXPECT_THROW(deserialise_graph_text(is), Contract_violation);
    }
    {
        // Missing outputs record.
        std::istringstream is("xrlflow-graph v1\nnode 0 input inputs 0 name - shape 1 4 { }\n");
        EXPECT_THROW(deserialise_graph_text(is), Contract_violation);
    }
    {
        // Dangling edge reference.
        std::istringstream is(
            "xrlflow-graph v1\nnode 1 relu inputs 1 0:0 name - shape 0 { }\noutputs 1 1:0\n");
        EXPECT_THROW(deserialise_graph_text(is), std::exception);
    }
}

// ---------------------------------------------------------------------------
// Op_params text round-trip (property sweep)
// ---------------------------------------------------------------------------

TEST(ParamsIo, RandomisedRoundTrip)
{
    Rng rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        Op_params p;
        p.activation = static_cast<Activation>(rng.uniform_index(5));
        p.stride_h = static_cast<std::int64_t>(rng.uniform_index(4)) + 1;
        p.stride_w = static_cast<std::int64_t>(rng.uniform_index(4)) + 1;
        p.pad_h = static_cast<std::int64_t>(rng.uniform_index(4));
        p.pad_w = static_cast<std::int64_t>(rng.uniform_index(4));
        p.groups = static_cast<std::int64_t>(rng.uniform_index(8)) + 1;
        p.axis = static_cast<std::int64_t>(rng.uniform_index(4));
        if (rng.uniform() < 0.5) p.split_sizes = {1 + static_cast<std::int64_t>(rng.uniform_index(5)),
                                                  1 + static_cast<std::int64_t>(rng.uniform_index(5))};
        if (rng.uniform() < 0.5) p.perm = {1, 0};
        if (rng.uniform() < 0.5) p.target_shape = {2, static_cast<std::int64_t>(rng.uniform_index(9)) + 1};
        p.begin = static_cast<std::int64_t>(rng.uniform_index(3));
        p.end = p.begin + 1 + static_cast<std::int64_t>(rng.uniform_index(3));
        p.keep_dim = rng.uniform() < 0.5;
        const Op_params round = params_from_string(params_to_string(p));
        EXPECT_EQ(round, p) << params_to_string(p);
    }
}

// ---------------------------------------------------------------------------
// Rule corpus sweep over the model zoo
// ---------------------------------------------------------------------------

class Zoo_rules : public ::testing::TestWithParam<int> {};

TEST_P(Zoo_rules, EveryCandidateIsValidAndCostable)
{
    const auto specs = evaluation_models(Scale::smoke);
    const Model_spec& spec = specs[static_cast<std::size_t>(GetParam())];
    const Graph model = spec.build();
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    E2e_simulator sim(gtx1080_profile(), 17);

    int candidates = 0;
    for (const auto& rule : rules) {
        for (const Graph& candidate : rule->apply_all(model, 2)) {
            ++candidates;
            EXPECT_NO_THROW(candidate.validate()) << spec.name << " / " << rule->name();
            const double c = cost.graph_cost_ms(candidate);
            EXPECT_GT(c, 0.0);
            EXPECT_TRUE(std::isfinite(c));
            const double e = sim.noiseless_ms(candidate);
            EXPECT_GT(e, 0.0);
            EXPECT_TRUE(std::isfinite(e));
        }
    }
    EXPECT_GT(candidates, 0) << spec.name << " has no rewrite opportunities at all";
}

INSTANTIATE_TEST_SUITE_P(Models, Zoo_rules, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                             std::string name =
                                 evaluation_models(Scale::smoke)[static_cast<std::size_t>(
                                                                     info.param)]
                                     .name;
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

class Zoo_e2e : public ::testing::TestWithParam<int> {};

TEST_P(Zoo_e2e, BreakdownIsConsistent)
{
    const auto specs = evaluation_models(Scale::smoke);
    const Graph model = specs[static_cast<std::size_t>(GetParam())].build();
    E2e_simulator sim(gtx1080_profile(), 19);
    const E2e_breakdown b = sim.analyse(model);
    EXPECT_NEAR(b.total_ms, b.compute_ms + b.launch_ms + b.scheduler_ms, 1e-12);
    EXPECT_GT(b.kernels_launched, 0);
    EXPECT_GE(b.kernels_fused, 0);
    EXPECT_GE(b.nodes_folded, 0);
    EXPECT_LE(static_cast<std::size_t>(b.kernels_fused + b.nodes_folded), model.size());
    // Kernel count can exceed node count (grouped convolutions launch one
    // kernel per group) but must stay within groups * nodes.
    EXPECT_LT(b.kernels_launched, static_cast<int>(model.size()) * 64);
}

INSTANTIATE_TEST_SUITE_P(Models, Zoo_e2e, ::testing::Range(0, 7));

// ---------------------------------------------------------------------------
// Optimiser pipelines
// ---------------------------------------------------------------------------

TEST(Pipeline, TasoNeverIncreasesCostOnZoo)
{
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    Taso_config config;
    config.budget = 8;
    for (const Model_spec& spec : evaluation_models(Scale::smoke)) {
        const Graph model = spec.build();
        const Taso_result result = optimise_taso(model, rules, cost, config);
        EXPECT_LE(result.best_cost_ms, result.initial_cost_ms + 1e-12) << spec.name;
        EXPECT_NO_THROW(result.best_graph.validate()) << spec.name;
    }
}

TEST(Pipeline, TensatHandlesTransformerAndConvnet)
{
    const Cost_model cost(gtx1080_profile());
    Tensat_config config;
    config.max_iterations = 2;
    for (const auto* name : {"BERT", "SqueezeNet"}) {
        Graph model;
        for (const Model_spec& spec : evaluation_models(Scale::smoke))
            if (spec.name == name) model = spec.build();
        const Tensat_result result =
            optimise_tensat(model, curated_patterns(), Rule_set{}, cost, config);
        EXPECT_LE(result.best_cost_ms, result.initial_cost_ms + 1e-12) << name;
        EXPECT_NO_THROW(result.best_graph.validate()) << name;
    }
}

TEST(Pipeline, OptimiseThenExportThenReload)
{
    const Graph model = make_transformer_transducer(Scale::smoke, 16);
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    Taso_config config;
    config.budget = 10;
    const Taso_result result = optimise_taso(model, rules, cost, config);

    std::ostringstream os;
    serialise_graph_text(os, result.best_graph);
    std::istringstream is(os.str());
    const Graph loaded = deserialise_graph_text(is);
    EXPECT_NEAR(cost.graph_cost_ms(loaded), result.best_cost_ms, 1e-9);
}

TEST(Pipeline, EmbeddingFoldIsCostModelRejectedButE2eAccepted)
{
    // The §4.2 story in miniature: the same rewrite is judged oppositely by
    // the two signals.
    const Graph model = make_bert(Scale::smoke, 16);
    Rule_set fold_only;
    fold_only.push_back(make_fold_embedding_projection_rule());
    const auto candidates = fold_only.front()->apply_all(model, 1);
    ASSERT_FALSE(candidates.empty());

    const Cost_model cost(gtx1080_profile());
    E2e_simulator sim(gtx1080_profile(), 23);
    EXPECT_GT(cost.graph_cost_ms(candidates.front()), cost.graph_cost_ms(model));
    EXPECT_LT(sim.noiseless_ms(candidates.front()), sim.noiseless_ms(model));
}

TEST(Pipeline, BatchNormFoldIsCostModelRejectedButE2eAccepted)
{
    const Graph model = make_resnet18(Scale::smoke);
    Rule_set fold_only;
    fold_only.push_back(make_fold_batch_norm_rule());
    const auto candidates = fold_only.front()->apply_all(model, 1);
    ASSERT_FALSE(candidates.empty());

    const Cost_model cost(gtx1080_profile());
    E2e_simulator sim(gtx1080_profile(), 29);
    EXPECT_GT(cost.graph_cost_ms(candidates.front()), cost.graph_cost_ms(model));
    EXPECT_LT(sim.noiseless_ms(candidates.front()), sim.noiseless_ms(model));
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(Determinism, EnvironmentEpisodesReplayExactly)
{
    const Rule_set rules = standard_rule_corpus();
    const Graph model = make_bert(Scale::smoke, 16);

    auto run = [&] {
        E2e_simulator sim(gtx1080_profile(), 31);
        Environment env(model, rules, sim);
        std::vector<double> rewards;
        int step = 0;
        while (!env.done() && step++ < 6) rewards.push_back(env.step(0).reward);
        return rewards;
    };
    EXPECT_EQ(run(), run());
}

TEST(Determinism, TasoIsDeterministic)
{
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    Taso_config config;
    config.budget = 6;
    const Graph model = make_squeezenet(Scale::smoke);
    const Taso_result a = optimise_taso(model, rules, cost, config);
    const Taso_result b = optimise_taso(model, rules, cost, config);
    EXPECT_EQ(a.best_graph.canonical_hash(), b.best_graph.canonical_hash());
    EXPECT_EQ(a.best_cost_ms, b.best_cost_ms);
}

} // namespace
} // namespace xrl
