#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/agent.h"
#include "core/trainer.h"
#include "core/xrlflow.h"
#include "ir/builder.h"
#include "models/models.h"
#include "rules/corpus.h"
#include "support/check.h"

namespace xrl {
namespace {

Agent_config tiny_agent_config()
{
    Agent_config config;
    config.gnn.hidden_dim = 8;
    config.gnn.global_dim = 8;
    config.gnn.num_gat_layers = 2;
    config.head_hidden = {16, 8};
    config.max_candidates = 15;
    return config;
}

Graph tiny_model()
{
    Graph_builder b;
    Edge x = b.input({4, 8}, "x");
    for (int i = 0; i < 2; ++i) {
        const Edge w = b.weight({8, 8});
        x = b.relu(b.matmul(x, w));
    }
    return b.finish({x});
}

TEST(Agent, ForwardProducesPaddedLogitsAndValue)
{
    Agent agent(tiny_agent_config(), 5);
    const Graph g = tiny_model();
    const Encoded_graph state = encode_meta_graph(g, {&g, &g}); // 2 candidates
    Tape tape;
    const Agent::Forward fwd = agent.forward(tape, state);
    EXPECT_EQ(tape.value(fwd.logits).shape(), (Shape{16, 1})); // max_candidates + noop
    EXPECT_EQ(tape.value(fwd.value).shape(), (Shape{1, 1}));
}

TEST(Agent, ActRespectsMask)
{
    Agent agent(tiny_agent_config(), 5);
    const Graph g = tiny_model();
    const Encoded_graph state = encode_meta_graph(g, {&g});
    std::vector<std::uint8_t> mask(16, 0);
    mask[0] = 1;  // single candidate
    mask[15] = 1; // noop
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        const auto decision = agent.act(state, mask, rng);
        EXPECT_TRUE(decision.action == 0 || decision.action == 15);
        EXPECT_LE(decision.log_prob, 0.0);
    }
}

TEST(Agent, GreedyActionIsDeterministic)
{
    Agent agent(tiny_agent_config(), 5);
    const Graph g = tiny_model();
    const Encoded_graph state = encode_meta_graph(g, {&g, &g});
    std::vector<std::uint8_t> mask(16, 0);
    mask[0] = mask[1] = mask[15] = 1;
    Rng rng(3);
    const int first = agent.act(state, mask, rng, /*greedy=*/true).action;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(agent.act(state, mask, rng, true).action, first);
}

TEST(Agent, SaveLoadRoundTripsDecisions)
{
    const std::string path = std::filesystem::temp_directory_path() / "xrl_agent_test.bin";
    Agent a(tiny_agent_config(), 5);
    a.save(path);

    Agent b(tiny_agent_config(), 999); // different init
    const Graph g = tiny_model();
    const Encoded_graph state = encode_meta_graph(g, {&g, &g});
    std::vector<std::uint8_t> mask(16, 0);
    mask[0] = mask[1] = mask[15] = 1;
    Rng rng(3);
    b.load(path);
    EXPECT_EQ(b.act(state, mask, rng, true).action, a.act(state, mask, rng, true).action);

    Tape ta;
    Tape tb;
    const auto fa = a.forward(ta, state);
    const auto fb = b.forward(tb, state);
    EXPECT_TRUE(Tensor::all_close(ta.value(fa.logits), tb.value(fb.logits), 0.0F));
    std::remove(path.c_str());
}

TEST(Agent, RejectsTooManyCandidates)
{
    Agent_config config = tiny_agent_config();
    config.max_candidates = 1;
    Agent agent(config, 5);
    const Graph g = tiny_model();
    const Encoded_graph state = encode_meta_graph(g, {&g, &g}); // 2 > 1
    Tape tape;
    EXPECT_THROW(agent.forward(tape, state), Contract_violation);
}

TEST(Trainer, EpisodeRecordsTransitionsAndUpdates)
{
    const Rule_set rules = standard_rule_corpus();
    E2e_simulator sim(gtx1080_profile(), 11);
    Env_config env_config;
    env_config.max_candidates = 15;
    env_config.max_steps = 6;
    Environment env(tiny_model(), rules, sim, env_config);

    Agent agent(tiny_agent_config(), 5);
    Trainer_config trainer_config;
    trainer_config.update_every_episodes = 2;
    trainer_config.ppo.minibatch_size = 4;
    trainer_config.ppo.epochs = 2;
    Trainer trainer(agent, env, trainer_config);

    // Snapshot a parameter to observe learning updates.
    const Tensor before = agent.parameters().front()->value;

    const int updates = trainer.train(2);
    EXPECT_EQ(updates, 1);
    EXPECT_EQ(trainer.history().size(), 2u);
    EXPECT_GT(trainer.last_update().minibatches, 0);
    for (const Episode_stats& s : trainer.history()) {
        EXPECT_GT(s.steps, 0);
        EXPECT_GT(s.final_latency_ms, 0.0);
    }

    const Tensor& after = agent.parameters().front()->value;
    EXPECT_FALSE(Tensor::all_close(before, after, 0.0F)); // parameters moved
}

TEST(Trainer, GreedyEpisodeDoesNotRecord)
{
    const Rule_set rules = standard_rule_corpus();
    E2e_simulator sim(gtx1080_profile(), 12);
    Env_config env_config;
    env_config.max_candidates = 15;
    env_config.max_steps = 4;
    Environment env(tiny_model(), rules, sim, env_config);
    Agent agent(tiny_agent_config(), 5);
    Trainer trainer(agent, env, {});
    const Episode_stats stats = trainer.run_episode(/*greedy=*/true, /*record=*/false);
    EXPECT_GT(stats.steps, 0);
    const int updates = trainer.train(0);
    EXPECT_EQ(updates, 0); // empty buffer, no update
}

TEST(Xrlflow, OptimiseReturnsValidImprovedOrEqualGraph)
{
    const Rule_set rules = standard_rule_corpus();
    Xrlflow_config config;
    config.agent = tiny_agent_config();
    config.env.max_steps = 8;
    Xrlflow system(rules, config);

    const Graph model = tiny_model();
    const Optimisation_outcome outcome = system.optimise(model);
    EXPECT_NO_THROW(outcome.best_graph.validate());
    EXPECT_LE(outcome.final_ms, outcome.initial_ms + 1e-12);
    EXPECT_GE(outcome.speedup(), 1.0);
    EXPECT_EQ(outcome.rule_counts.size(), rules.size());
}

TEST(Xrlflow, ShortTrainingRunsEndToEnd)
{
    const Rule_set rules = standard_rule_corpus();
    Xrlflow_config config;
    config.agent = tiny_agent_config();
    config.env.max_steps = 5;
    config.trainer.update_every_episodes = 2;
    config.trainer.ppo.minibatch_size = 4;
    config.trainer.ppo.epochs = 1;
    Xrlflow system(rules, config);

    system.train(tiny_model(), 2);
    EXPECT_EQ(system.training_history().size(), 2u);
}

TEST(Xrlflow, TrainedPolicyTransfersAcrossShapes)
{
    // Figure 7 mechanics: train on one tensor shape, optimise another.
    const Rule_set rules = standard_rule_corpus();
    Xrlflow_config config;
    config.agent = tiny_agent_config();
    config.env.max_steps = 5;
    config.trainer.update_every_episodes = 2;
    config.trainer.ppo.minibatch_size = 4;
    config.trainer.ppo.epochs = 1;
    Xrlflow system(rules, config);
    system.train(tiny_model(), 2);

    Graph_builder b;
    Edge x = b.input({16, 8}, "x"); // different batch dimension
    for (int i = 0; i < 2; ++i) {
        const Edge w = b.weight({8, 8});
        x = b.relu(b.matmul(x, w));
    }
    const Graph other_shape = b.finish({x});
    const Optimisation_outcome outcome = system.optimise(other_shape);
    EXPECT_LE(outcome.final_ms, outcome.initial_ms + 1e-12);
}

} // namespace
} // namespace xrl
