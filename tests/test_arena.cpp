// Unit tests for the hot-loop allocators (support/arena.h): the chunked
// monotonic Arena, its allocator adapter, and the recycled-slot Pool the
// candidate engine materialises step candidates into.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/arena.h"
#include "support/check.h"

namespace xrl {
namespace {

TEST(Arena, BumpAllocatesWithinOneChunk)
{
    Arena arena(1024);
    void* a = arena.allocate(100);
    void* b = arena.allocate(100);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(arena.stats().chunks, 1u);
    EXPECT_EQ(arena.stats().reserved_bytes, 1024u);
    EXPECT_EQ(arena.stats().allocations, 2u);
    EXPECT_EQ(arena.stats().live_bytes, 200u);
}

TEST(Arena, RespectsAlignment)
{
    // Up to alignof(max_align_t) — the strongest the chunk base guarantees.
    constexpr std::size_t align = alignof(std::max_align_t);
    Arena arena(1024);
    arena.allocate(1, 1);
    void* p = arena.allocate(8, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
}

TEST(Arena, GrowsByOneChunkWhenFullAndSizesOversizedRequests)
{
    Arena arena(256);
    arena.allocate(200);
    arena.allocate(200); // does not fit chunk 1
    EXPECT_EQ(arena.stats().chunks, 2u);
    // A request larger than the chunk size gets its own chunk.
    arena.allocate(10000);
    EXPECT_EQ(arena.stats().chunks, 3u);
    EXPECT_GE(arena.stats().reserved_bytes, 256u + 256u + 10000u);
}

TEST(Arena, ResetRecyclesChunksWithoutReleasingThem)
{
    Arena arena(256);
    arena.allocate(200);
    arena.allocate(200);
    const std::size_t reserved = arena.stats().reserved_bytes;
    ASSERT_EQ(arena.stats().chunks, 2u);

    arena.reset();
    EXPECT_EQ(arena.stats().live_bytes, 0u);
    EXPECT_EQ(arena.stats().resets, 1u);
    // Memory is retained — reset() frees nothing.
    EXPECT_EQ(arena.stats().chunks, 2u);
    EXPECT_EQ(arena.stats().reserved_bytes, reserved);

    // The next cycle is served from the warm chunks: no growth.
    void* p = arena.allocate(200);
    EXPECT_NE(p, nullptr);
    arena.allocate(200);
    EXPECT_EQ(arena.stats().chunks, 2u);
    EXPECT_EQ(arena.stats().reserved_bytes, reserved);
}

TEST(Arena, HighWaterTracksThePeakAcrossResetCycles)
{
    Arena arena(4096);
    arena.allocate(300);
    arena.allocate(300);
    EXPECT_EQ(arena.stats().high_water_bytes, 600u);
    arena.reset();
    arena.allocate(100);
    // Peak persists across the reset even though live dropped.
    EXPECT_EQ(arena.stats().live_bytes, 100u);
    EXPECT_EQ(arena.stats().high_water_bytes, 600u);
    arena.reset();
    arena.allocate(700);
    EXPECT_EQ(arena.stats().high_water_bytes, 700u);
}

TEST(Arena, RejectsNonPowerOfTwoAlignment)
{
    Arena arena;
    EXPECT_THROW(arena.allocate(8, 3), Contract_violation);
}

TEST(Arena_allocator, BacksAVectorForOneResetCycle)
{
    Arena arena;
    std::vector<int, Arena_allocator<int>> v{Arena_allocator<int>(arena)};
    for (int i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v[99], 99);
    EXPECT_GT(arena.stats().allocations, 0u);
    // deallocate is a no-op: live bytes only ever grow until reset.
    const std::size_t live = arena.stats().live_bytes;
    v.clear();
    v.shrink_to_fit();
    EXPECT_EQ(arena.stats().live_bytes, live);
}

TEST(Pool, ReusesReleasedSlotsAndTheirBuffers)
{
    Pool<std::vector<std::string>> pool;
    auto* slot = pool.acquire();
    slot->assign(64, std::string(128, 'x'));
    const auto* stable_data = slot->data();
    pool.release(slot);

    auto* again = pool.acquire();
    // Same slot back, with its element buffer intact for reuse.
    EXPECT_EQ(again, slot);
    EXPECT_EQ(again->data(), stable_data);

    EXPECT_EQ(pool.stats().slots, 1u);
    EXPECT_EQ(pool.stats().acquires, 2u);
    EXPECT_EQ(pool.stats().reuses, 1u);
    pool.release(again);
}

TEST(Pool, HighWaterTracksPeakConcurrentSlots)
{
    Pool<int> pool;
    auto* a = pool.acquire();
    auto* b = pool.acquire();
    auto* c = pool.acquire();
    EXPECT_EQ(pool.stats().in_use, 3u);
    EXPECT_EQ(pool.stats().high_water_slots, 3u);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.stats().in_use, 1u);
    EXPECT_EQ(pool.stats().high_water_slots, 3u);
    // Re-acquiring below the peak never raises it.
    auto* d = pool.acquire();
    EXPECT_EQ(pool.stats().high_water_slots, 3u);
    pool.release(c);
    pool.release(d);
    EXPECT_EQ(pool.stats().slots, 3u);
}

TEST(Pool, ReleaseWithoutAcquireIsAContractViolation)
{
    Pool<int> pool;
    int stray = 0;
    EXPECT_THROW(pool.release(&stray), Contract_violation);
    EXPECT_THROW(pool.release(nullptr), Contract_violation);
}

} // namespace
} // namespace xrl
