#include <gtest/gtest.h>

#include "gnn/encoding.h"
#include "gnn/gnn.h"
#include "ir/builder.h"
#include "models/models.h"

namespace xrl {
namespace {

Graph small_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 8});
    const Edge w = b.weight({8, 8});
    return b.finish({b.relu(b.matmul(x, w))});
}

TEST(Encoding, CountsNodesAndEdges)
{
    const Graph g = small_graph();
    const Encoded_graph enc = encode_graph_for_gnn(g);
    EXPECT_EQ(enc.num_nodes, 4);
    EXPECT_EQ(enc.num_graphs, 1);
    EXPECT_EQ(enc.edge_src.size(), 3u);                     // matmul(2) + relu(1)
    EXPECT_EQ(enc.attn_src.size(), enc.edge_src.size() + 4); // + self loops
    EXPECT_EQ(enc.edge_features.shape(), (Shape{3, edge_feature_dim}));
}

TEST(Encoding, EdgeFeaturesAreNormalisedShapes)
{
    const Graph g = small_graph();
    const Encoded_graph enc = encode_graph_for_gnn(g);
    // Every edge of this graph carries a rank-2 shape -> leading two
    // feature slots zero, trailing two are dims / 4096.
    for (std::int64_t e = 0; e < enc.edge_features.dim(0); ++e) {
        EXPECT_EQ(enc.edge_features.at(e * edge_feature_dim + 0), 0.0F);
        EXPECT_EQ(enc.edge_features.at(e * edge_feature_dim + 1), 0.0F);
        EXPECT_GT(enc.edge_features.at(e * edge_feature_dim + 3), 0.0F);
        EXPECT_LT(enc.edge_features.at(e * edge_feature_dim + 3), 1.0F);
    }
}

TEST(Encoding, MetaGraphOffsetsMembers)
{
    const Graph g = small_graph();
    const Graph h = small_graph();
    const Encoded_graph enc = encode_meta_graph(g, {&h, &h});
    EXPECT_EQ(enc.num_graphs, 3);
    EXPECT_EQ(enc.num_nodes, 12);
    // Node-graph assignment is contiguous per member.
    EXPECT_EQ(enc.node_graph[0], 0);
    EXPECT_EQ(enc.node_graph[4], 1);
    EXPECT_EQ(enc.node_graph[8], 2);
    // Edges stay within their member's node range.
    for (std::size_t e = 0; e < enc.edge_src.size(); ++e)
        EXPECT_EQ(enc.node_graph[static_cast<std::size_t>(enc.edge_src[e])],
                  enc.node_graph[static_cast<std::size_t>(enc.edge_dst[e])]);
}

TEST(Encoding, OneHotFeatures)
{
    const Graph g = small_graph();
    const Encoded_graph enc = encode_graph_for_gnn(g);
    const Tensor features = one_hot_node_features(enc);
    EXPECT_EQ(features.shape(), (Shape{4, op_kind_count()}));
    for (std::int64_t row = 0; row < 4; ++row) {
        float total = 0.0F;
        for (std::int64_t c = 0; c < op_kind_count(); ++c) total += features.at(row * op_kind_count() + c);
        EXPECT_EQ(total, 1.0F);
    }
}

TEST(Encoding, MemoryAccountingIsPositive)
{
    const Graph g = small_graph();
    const Encoded_graph enc = encode_graph_for_gnn(g);
    EXPECT_GT(enc.memory_bytes(), 0u);
}

TEST(GnnLayers, NodeUpdateShapes)
{
    Rng rng(20);
    const Graph g = small_graph();
    const Encoded_graph enc = encode_graph_for_gnn(g);
    Node_update_layer layer(op_kind_count(), 16, rng);
    Tape tape;
    const Var h = layer(tape, tape.constant(one_hot_node_features(enc)), enc);
    EXPECT_EQ(tape.value(h).shape(), (Shape{4, 16}));
}

TEST(GnnLayers, GatPreservesWidth)
{
    Rng rng(21);
    const Graph g = small_graph();
    const Encoded_graph enc = encode_graph_for_gnn(g);
    Node_update_layer nu(op_kind_count(), 16, rng);
    Gat_layer gat(16, 0.2F, rng);
    Tape tape;
    Var h = nu(tape, tape.constant(one_hot_node_features(enc)), enc);
    h = gat(tape, h, enc);
    EXPECT_EQ(tape.value(h).shape(), (Shape{4, 16}));
}

TEST(GnnLayers, GlobalUpdateProducesPerGraphRows)
{
    Rng rng(22);
    const Graph g = small_graph();
    const Encoded_graph enc = encode_meta_graph(g, {&g, &g, &g});
    Node_update_layer nu(op_kind_count(), 16, rng);
    Global_update_layer gu(16, 8, rng);
    Tape tape;
    Var h = nu(tape, tape.constant(one_hot_node_features(enc)), enc);
    const Var graphs = gu(tape, h, enc);
    EXPECT_EQ(tape.value(graphs).shape(), (Shape{4, 8}));
}

TEST(GnnEncoder, EndToEndShapesAndDeterminism)
{
    Gnn_config config;
    config.hidden_dim = 16;
    config.global_dim = 12;
    config.num_gat_layers = 2;
    Rng rng(23);
    Gnn_encoder encoder(config, rng);

    const Graph g = small_graph();
    const Encoded_graph enc = encode_meta_graph(g, {&g});

    Tape t1;
    const auto out1 = encoder(t1, enc);
    EXPECT_EQ(t1.value(out1.node_embeddings).shape(), (Shape{8, 16}));
    EXPECT_EQ(t1.value(out1.graph_embeddings).shape(), (Shape{2, 12}));

    Tape t2;
    const auto out2 = encoder(t2, enc);
    EXPECT_TRUE(Tensor::all_close(t1.value(out2.graph_embeddings),
                                  t2.value(out2.graph_embeddings), 0.0F));
}

TEST(GnnEncoder, DistinguishesDifferentGraphs)
{
    Gnn_config config;
    config.hidden_dim = 16;
    config.global_dim = 12;
    config.num_gat_layers = 2;
    Rng rng(24);
    Gnn_encoder encoder(config, rng);

    Graph_builder b1;
    const Edge x1 = b1.input({4, 8});
    const Edge w1 = b1.weight({8, 8});
    const Graph with_relu = b1.finish({b1.relu(b1.matmul(x1, w1))});

    Graph_builder b2;
    const Edge x2 = b2.input({4, 8});
    const Edge w2 = b2.weight({8, 8});
    const Graph fused = b2.finish({b2.matmul(x2, w2, Activation::relu)});

    const Encoded_graph enc = encode_meta_graph(with_relu, {&fused});
    Tape tape;
    const auto out = encoder(tape, enc);
    const Tensor& emb = tape.value(out.graph_embeddings);
    float diff = 0.0F;
    for (std::int64_t c = 0; c < emb.dim(1); ++c)
        diff += std::abs(emb.at(c) - emb.at(emb.dim(1) + c));
    EXPECT_GT(diff, 1e-6F);
}

TEST(GnnEncoder, GradientsReachAllParameters)
{
    Gnn_config config;
    config.hidden_dim = 8;
    config.global_dim = 8;
    config.num_gat_layers = 2;
    Rng rng(25);
    Gnn_encoder encoder(config, rng);

    const Graph g = small_graph();
    const Encoded_graph enc = encode_meta_graph(g, {&g});

    for (Parameter* p : encoder.parameters()) p->zero_grad();
    Tape tape;
    const auto out = encoder(tape, enc);
    tape.backward(tape.sum_all(tape.square(out.graph_embeddings)));

    int touched = 0;
    for (Parameter* p : encoder.parameters()) {
        float norm = 0.0F;
        for (std::int64_t i = 0; i < p->grad.volume(); ++i) norm += std::abs(p->grad.at(i));
        if (norm > 0.0F) ++touched;
    }
    // All parameter blocks participate (bias of the last GAT may be dead if
    // relu saturates; allow one laggard).
    EXPECT_GE(touched, static_cast<int>(encoder.parameters().size()) - 1);
}

/// Field-by-field bitwise equality of two encodings (EXPECT_EQ on floats:
/// the Meta_encoder's warm-buffer reuse must not perturb a single bit).
void expect_encodings_identical(const Encoded_graph& a, const Encoded_graph& b)
{
    EXPECT_EQ(a.node_kinds, b.node_kinds);
    EXPECT_EQ(a.edge_src, b.edge_src);
    EXPECT_EQ(a.edge_dst, b.edge_dst);
    EXPECT_EQ(a.attn_src, b.attn_src);
    EXPECT_EQ(a.attn_dst, b.attn_dst);
    EXPECT_EQ(a.node_graph, b.node_graph);
    EXPECT_EQ(a.num_nodes, b.num_nodes);
    EXPECT_EQ(a.num_graphs, b.num_graphs);
    ASSERT_EQ(a.edge_features.shape(), b.edge_features.shape());
    for (std::int64_t i = 0; i < a.edge_features.volume(); ++i)
        EXPECT_EQ(a.edge_features.at(i), b.edge_features.at(i)) << "edge feature " << i;
}

TEST(Encoding, MetaEncoderMatchesFreeFunctionBitExactly)
{
    // Distinct member graphs so a row-offset bug cannot hide behind
    // identical encodings; candidate sets grow *and* shrink across calls so
    // stale tail entries in the reused buffers would be caught.
    const Graph current = make_bert(Scale::smoke, 16);
    const Graph a = small_graph();
    Graph_builder b2;
    const Edge x = b2.input({2, 16});
    const Edge w = b2.weight({16, 4});
    const Graph b = b2.finish({b2.matmul(x, w, Activation::relu)});

    Meta_encoder encoder;
    const std::vector<std::vector<const Graph*>> calls = {
        {&a}, {&a, &b, &a}, {&b}, {}, {&b, &a}};
    for (const auto& candidates : calls) {
        const Encoded_graph& warm = encoder.encode(current, candidates);
        const Encoded_graph fresh = encode_meta_graph(current, candidates);
        expect_encodings_identical(warm, fresh);
    }
}

TEST(GnnEncoder, BatchedMemberRowsMatchSingleCandidateEncoding)
{
    // The one-batched-forward optimisation is only sound because the GNN
    // treats meta-graph members as disjoint components: member k's
    // embedding in a K-candidate batch must equal (bit-identically) the
    // candidate row of a current+that-candidate-only encoding.
    Gnn_config config;
    config.hidden_dim = 16;
    config.global_dim = 12;
    config.num_gat_layers = 2;
    Rng rng(27);
    Gnn_encoder encoder(config, rng);

    const Graph current = small_graph();
    Graph_builder b1;
    const Edge x1 = b1.input({4, 8});
    const Edge w1 = b1.weight({8, 8});
    const Graph fused = b1.finish({b1.matmul(x1, w1, Activation::relu)});
    Graph_builder b2;
    const Edge x2 = b2.input({2, 4});
    const Graph unary = b2.finish({b2.relu(b2.relu(x2))});
    const std::vector<const Graph*> candidates = {&fused, &unary, &fused};

    Tape batched_tape;
    const auto batched =
        encoder(batched_tape, encode_meta_graph(current, candidates));
    const Tensor& rows = batched_tape.value(batched.graph_embeddings);
    ASSERT_EQ(rows.dim(0), static_cast<std::int64_t>(candidates.size()) + 1);

    for (std::size_t k = 0; k < candidates.size(); ++k) {
        Tape tape;
        const auto single = encoder(tape, encode_meta_graph(current, {candidates[k]}));
        const Tensor& pair = tape.value(single.graph_embeddings);
        ASSERT_EQ(pair.dim(0), 2);
        for (std::int64_t c = 0; c < rows.dim(1); ++c) {
            // Member 0 (the current graph) and member k+1 (the candidate).
            EXPECT_EQ(rows.at(c), pair.at(c)) << "current row, col " << c;
            EXPECT_EQ(rows.at((static_cast<std::int64_t>(k) + 1) * rows.dim(1) + c),
                      pair.at(rows.dim(1) + c))
                << "candidate " << k << ", col " << c;
        }
    }
}

TEST(GnnEncoder, HandlesRealModelGraph)
{
    const Graph model = make_squeezenet(Scale::smoke, 64);
    const Encoded_graph enc = encode_graph_for_gnn(model);
    EXPECT_GT(enc.num_nodes, 30);

    Gnn_config config;
    config.hidden_dim = 16;
    config.global_dim = 16;
    config.num_gat_layers = 2;
    Rng rng(26);
    Gnn_encoder encoder(config, rng);
    Tape tape;
    const auto out = encoder(tape, enc);
    EXPECT_EQ(tape.value(out.graph_embeddings).dim(0), 1);
}

} // namespace
} // namespace xrl
