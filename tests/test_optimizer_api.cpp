// The unified optimiser API: registry lookup, parity of the unified
// Optimize_result with the legacy per-backend structs, cancellation via the
// progress callback, and memoisation in Optimization_service.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/optimization_service.h"
#include "core/optimizer_api.h"
#include "core/xrlflow.h"
#include "ir/builder.h"
#include "optimizers/pet/pet_optimizer.h"
#include "optimizers/taso/taso_optimizer.h"
#include "optimizers/tensat/tensat_optimizer.h"
#include "rules/bespoke_rules.h"
#include "rules/corpus.h"
#include "support/check.h"
#include "optimizer_test_util.h"

namespace xrl {
namespace {

using test::api_context;

/// The quickstart graph (paper Figure 1): y = relu(x.w + b).
Graph quickstart_graph()
{
    Graph_builder b;
    const Edge x = b.input({4, 32}, "x");
    const Edge w = b.weight({32, 16}, "w");
    const Edge bias = b.weight({16}, "b");
    return b.finish({b.relu(b.add(b.matmul(x, w), bias))});
}

/// A slightly richer graph so searches take more than one step.
Graph projection_graph()
{
    Graph_builder b;
    const Edge x = b.input({8, 32}, "x");
    const Edge wq = b.weight({32, 16});
    const Edge wk = b.weight({32, 16});
    const Edge y = b.add(b.relu(b.matmul(x, wq)), b.relu(b.matmul(x, wk)));
    return b.finish({y});
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(OptimizerRegistry, BuiltInServesAllFourBackends)
{
    const std::vector<std::string> expected = {"pet", "taso", "tensat", "xrlflow"};
    EXPECT_EQ(Optimizer_registry::built_in().names(), expected);
    for (const std::string& name : expected)
        EXPECT_TRUE(Optimizer_registry::built_in().contains(name));
    EXPECT_FALSE(Optimizer_registry::built_in().contains("simulated-annealing"));
}

TEST(OptimizerRegistry, UnknownBackendThrowsWithKnownNames)
{
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    try {
        make_optimizer("nope", api_context(rules));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("taso"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
    }
}

TEST(OptimizerRegistry, IncompleteContextViolatesContract)
{
    EXPECT_THROW(make_optimizer("taso", Optimizer_context{}), Contract_violation);
}

TEST(OptimizerRegistry, DuplicateRegistrationViolatesContract)
{
    Optimizer_registry registry;
    register_taso_backend(registry);
    EXPECT_THROW(register_taso_backend(registry), Contract_violation);
}

TEST(OptimizerRegistry, EveryBackendReturnsPopulatedResult)
{
    const Graph g = quickstart_graph();
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    // Tiny budgets: this exercises plumbing, not search quality.
    const Optimizer_context context = api_context(
        rules,
        {{"taso.budget", 10}, {"pet.budget", 10}, {"tensat.max_iterations", 2},
         {"xrlflow.episodes", 1}, {"xrlflow.max_steps", 6}});
    for (const std::string& name : Optimizer_registry::built_in().names()) {
        const auto optimizer = make_optimizer(name, context);
        EXPECT_EQ(optimizer->name(), name);
        const Optimize_result result = optimizer->optimize(g, {});
        EXPECT_EQ(result.backend, name) << name;
        EXPECT_GT(result.initial_ms, 0.0) << name;
        EXPECT_GT(result.final_ms, 0.0) << name;
        EXPECT_LE(result.final_ms, result.initial_ms + 1e-12) << name;
        EXPECT_GT(result.best_graph.size(), 0u) << name;
        EXPECT_GE(result.wall_seconds, 0.0) << name;
        EXPECT_FALSE(result.cancelled) << name;
        EXPECT_NO_THROW(result.best_graph.validate()) << name;
    }
}

// ---------------------------------------------------------------------------
// Parity with the legacy per-backend entry points
// ---------------------------------------------------------------------------

TEST(OptimizerParity, TasoAdapterMatchesLegacyResult)
{
    const Graph g = quickstart_graph();
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    Taso_config config;
    config.budget = 20;
    const Taso_result legacy = optimise_taso(g, rules, cost, config);

    const auto taso = make_optimizer("taso", api_context(rules, {{"taso.budget", 20}}));
    const Optimize_result unified = taso->optimize(g, {});

    EXPECT_EQ(unified.initial_ms, legacy.initial_cost_ms);
    EXPECT_EQ(unified.final_ms, legacy.best_cost_ms);
    EXPECT_EQ(unified.steps, legacy.iterations);
    EXPECT_EQ(unified.best_graph.canonical_hash(), legacy.best_graph.canonical_hash());
    EXPECT_EQ(unified.metadata.at("candidates_generated"), legacy.candidates_generated);
}

TEST(OptimizerParity, PetAdapterMatchesLegacyResult)
{
    const Graph g = projection_graph();
    const Cost_model cost(gtx1080_profile());
    Taso_config config;
    config.budget = 10;
    const Pet_result legacy = optimise_pet(g, cost, config);

    const Rule_set rules = standard_rule_corpus();
    const auto pet = make_optimizer("pet", api_context(rules, {{"pet.budget", 10}}));
    const Optimize_result unified = pet->optimize(g, {});

    EXPECT_EQ(unified.final_ms, legacy.honest_cost_ms);
    EXPECT_EQ(unified.metadata.at("pet_believed_ms"), legacy.pet_cost_ms);
    EXPECT_EQ(unified.steps, legacy.iterations);
    EXPECT_EQ(unified.best_graph.canonical_hash(), legacy.best_graph.canonical_hash());
}

TEST(OptimizerParity, TensatAdapterMatchesLegacyResult)
{
    const Graph g = projection_graph();
    const Cost_model cost(gtx1080_profile());
    // Replicate the adapter's setup with the legacy entry point.
    Rule_set multi;
    multi.push_back(make_merge_matmul_shared_lhs_rule());
    multi.push_back(make_merge_conv_shared_input_rule());
    Tensat_config config;
    config.max_iterations = 3;
    const Tensat_result legacy = optimise_tensat(g, curated_patterns(), multi, cost, config);

    const Rule_set rules = standard_rule_corpus();
    const auto tensat =
        make_optimizer("tensat", api_context(rules, {{"tensat.max_iterations", 3}}));
    const Optimize_result unified = tensat->optimize(g, {});

    EXPECT_EQ(unified.initial_ms, legacy.initial_cost_ms);
    EXPECT_EQ(unified.final_ms, legacy.best_cost_ms);
    EXPECT_EQ(unified.best_graph.canonical_hash(), legacy.best_graph.canonical_hash());
    EXPECT_EQ(unified.metadata.at("egraph_nodes"), static_cast<double>(legacy.egraph_nodes));
    EXPECT_EQ(unified.metadata.at("saturated") > 0.0, legacy.saturated);
}

TEST(OptimizerParity, XrlflowAdapterMatchesLegacyGreedyRollout)
{
    const Graph g = projection_graph();
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());

    // Legacy path: an untrained policy run greedily, with the exact
    // configuration the adapter documents as its smoke default.
    Xrlflow_config config;
    config.seed = 11;
    config.agent.gnn.hidden_dim = 16;
    config.agent.gnn.global_dim = 16;
    config.agent.head_hidden = {64, 32};
    config.agent.max_candidates = 31;
    config.env.max_steps = 40;
    config.trainer.update_every_episodes = 4;
    config.trainer.ppo.minibatch_size = 8;
    config.trainer.seed = 11;
    Xrlflow legacy_system(rules, config);
    const Optimisation_outcome legacy = legacy_system.optimise(g);

    const auto xrlflow =
        make_optimizer("xrlflow", api_context(rules, {{"xrlflow.episodes", 0}}));
    Optimize_request request;
    request.seed = 11;
    request.deterministic = true;
    const Optimize_result unified = xrlflow->optimize(g, request);

    EXPECT_EQ(unified.initial_ms, legacy.initial_ms);
    EXPECT_EQ(unified.final_ms, legacy.final_ms);
    EXPECT_EQ(unified.steps, legacy.steps);
    EXPECT_EQ(unified.best_graph.canonical_hash(), legacy.best_graph.canonical_hash());
}

// ---------------------------------------------------------------------------
// Budgets and cancellation
// ---------------------------------------------------------------------------

TEST(OptimizeRequest, ProgressCallbackCancelsSearch)
{
    const Graph g = projection_graph();
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    const auto taso = make_optimizer("taso", api_context(rules));

    int calls = 0;
    Optimize_request request;
    request.on_progress = [&calls](const Optimize_progress& progress) {
        EXPECT_EQ(progress.backend, "taso");
        ++calls;
        return calls < 2; // cancel at the second heartbeat
    };
    const Optimize_result result = taso->optimize(g, request);
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(calls, 2);
    EXPECT_LE(result.steps, 2);
    // Best-so-far is still a usable graph.
    EXPECT_NO_THROW(result.best_graph.validate());
    EXPECT_GT(result.final_ms, 0.0);
}

TEST(OptimizeRequest, TimeBudgetStopsSearch)
{
    const Graph g = projection_graph();
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    const auto taso = make_optimizer("taso", api_context(rules, {{"taso.budget", 100000}}));
    Optimize_request request;
    request.time_budget_seconds = 1e-9; // expires before the first pop
    const Optimize_result result = taso->optimize(g, request);
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(result.steps, 0);
    EXPECT_EQ(result.best_graph.canonical_hash(), g.canonical_hash());
}

TEST(OptimizeRequest, CancellationReachesXrlflowInference)
{
    const Graph g = projection_graph();
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    const auto xrlflow =
        make_optimizer("xrlflow", api_context(rules, {{"xrlflow.episodes", 0}}));
    Optimize_request request;
    request.on_progress = [](const Optimize_progress&) { return false; };
    const Optimize_result result = xrlflow->optimize(g, request);
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(result.steps, 0);
}

// ---------------------------------------------------------------------------
// Optimization_service
// ---------------------------------------------------------------------------

TEST(OptimizationService, ListsRegistryBackends)
{
    Optimization_service service;
    const std::vector<std::string> expected = {"pet", "taso", "tensat", "xrlflow"};
    EXPECT_EQ(service.backends(), expected);
}

TEST(OptimizationService, RepeatedOptimizeIsServedFromCache)
{
    Service_config config;
    config.backend_options["taso.budget"] = 15;
    Optimization_service service(config);
    const Graph g = quickstart_graph();

    const Optimize_result first = service.optimize("taso", g);
    EXPECT_FALSE(first.from_cache);
    EXPECT_EQ(service.cache_hits(), 0u);
    EXPECT_EQ(service.cache_misses(), 1u);

    const Optimize_result second = service.optimize("taso", g);
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(service.cache_hits(), 1u);
    EXPECT_EQ(second.final_ms, first.final_ms);
    EXPECT_EQ(second.best_graph.canonical_hash(), first.best_graph.canonical_hash());

    // A different request fingerprint misses.
    Optimize_request other;
    other.iteration_budget = 3;
    EXPECT_FALSE(service.optimize("taso", g, other).from_cache);
    EXPECT_EQ(service.cache_misses(), 2u);

    service.clear_cache();
    EXPECT_EQ(service.cache_size(), 0u);
    EXPECT_FALSE(service.optimize("taso", g).from_cache);
}

TEST(OptimizationService, CancelledRunsAreNotCached)
{
    Optimization_service service;
    const Graph g = projection_graph();
    Optimize_request cancel_all;
    cancel_all.on_progress = [](const Optimize_progress&) { return false; };
    const Optimize_result cancelled = service.optimize("taso", g, cancel_all);
    EXPECT_TRUE(cancelled.cancelled);
    EXPECT_EQ(service.cache_size(), 0u);
    // The follow-up full run is a miss, not a poisoned hit.
    const Optimize_result full = service.optimize("taso", g, {});
    EXPECT_FALSE(full.from_cache);
    EXPECT_FALSE(full.cancelled);
}

TEST(OptimizationService, UnknownBackendThrowsAndLeavesServiceUsable)
{
    Optimization_service service;
    const Graph g = quickstart_graph();
    EXPECT_THROW(service.optimize("nope", g), std::invalid_argument);
    EXPECT_NO_THROW(service.optimize("taso", g));
}

TEST(OptimizationService, OptimizeAllComparesEveryBackend)
{
    Service_config config;
    config.backend_options["taso.budget"] = 8;
    config.backend_options["pet.budget"] = 8;
    config.backend_options["tensat.max_iterations"] = 2;
    config.backend_options["xrlflow.episodes"] = 0;
    config.backend_options["xrlflow.max_steps"] = 6;
    Optimization_service service(config);

    const Graph g = quickstart_graph();
    const std::vector<Backend_run> runs = service.optimize_all(g, {}, 3);
    ASSERT_EQ(runs.size(), 4u);
    for (const Backend_run& run : runs) {
        EXPECT_EQ(run.result.backend, run.backend);
        EXPECT_GT(run.e2e_before.mean_ms, 0.0) << run.backend;
        EXPECT_GT(run.e2e_after.mean_ms, 0.0) << run.backend;
        EXPECT_EQ(run.e2e_before.repeats, 3) << run.backend;
    }
}

} // namespace
} // namespace xrl
