// Tests for the annotated synchronisation layer (support/sync.h) and the
// lock-rank deadlock detector behind it.
//
// The wrapper-semantics tests run in every build. The detector tests are
// death tests: they deliberately commit lock-order crimes and assert the
// process aborts naming both locks. In builds where the detector is
// compiled out (plain Release), those tests instead prove the inverse —
// the same crimes go unpunished, i.e. the checks really cost nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/sync.h"

namespace xrl {
namespace {

// ---------------------------------------------------------------------------
// Wrapper semantics (all builds)
// ---------------------------------------------------------------------------

TEST(Sync, MutexLocksAndUnlocks)
{
    Mutex m("test_leaf", Lock_rank::leaf);
    m.lock();
    EXPECT_FALSE(m.try_lock()) << "a held std::mutex must not be re-acquirable";
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
    EXPECT_STREQ(m.name(), "test_leaf");
    EXPECT_EQ(m.rank(), static_cast<int>(Lock_rank::leaf));
}

TEST(Sync, LockGuardProvidesMutualExclusion)
{
    Mutex m("test_counter", Lock_rank::leaf);
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                const Lock_guard lock(m);
                ++counter;
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(counter, 4000);
}

TEST(Sync, UniqueLockUnlocksMidScopeAndRelocks)
{
    Mutex m("test_unique", Lock_rank::leaf);
    Unique_lock lock(m);
    EXPECT_TRUE(lock.owns_lock());
    lock.unlock();
    EXPECT_FALSE(lock.owns_lock());
    EXPECT_TRUE(m.try_lock()); // really released
    m.unlock();
    lock.lock();
    EXPECT_TRUE(lock.owns_lock());
}

TEST(Sync, TryLockScopeReportsOwnership)
{
    Mutex m("test_try", Lock_rank::leaf);
    {
        const Try_lock first(m);
        ASSERT_TRUE(first.owns_lock());
        const Try_lock second(m);
        EXPECT_FALSE(second.owns_lock());
    }
    const Try_lock after(m); // both scopes released correctly
    EXPECT_TRUE(after.owns_lock());
}

TEST(Sync, SharedMutexAllowsConcurrentReaders)
{
    // Recursive same-thread lock_shared is UB (and the detector rejects it),
    // so the second reader is a real second thread.
    Shared_mutex m("test_shared", Lock_rank::leaf);
    m.lock_shared();
    std::thread other([&] {
        const Shared_lock reader(m); // must not block on the first reader
    });
    other.join();
    m.unlock_shared();
    {
        const Writer_lock writer(m);
    }
    const Shared_lock reader(m); // writer released exclusivity
}

TEST(Sync, WriterExcludesReaders)
{
    Shared_mutex m("test_rw", Lock_rank::leaf);
    int value = 0;
    std::atomic<bool> torn{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 500; ++i) {
                const Writer_lock lock(m);
                ++value;
                ++value; // readers must never observe an odd value
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 500; ++i) {
                const Shared_lock lock(m);
                if (value % 2 != 0) torn.store(true);
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_FALSE(torn.load());
    EXPECT_EQ(value, 2000);
}

TEST(Sync, CondVarProducerConsumer)
{
    Mutex m("test_cv", Lock_rank::leaf);
    Cond_var cv;
    std::vector<int> queue;
    bool done = false;

    std::thread consumer([&] {
        int received = 0;
        Unique_lock lock(m);
        while (true) {
            cv.wait(lock, [&]() XRL_REQUIRES(m) { return !queue.empty() || done; });
            received += static_cast<int>(queue.size());
            queue.clear();
            if (done) break;
        }
        EXPECT_EQ(received, 100);
    });

    for (int i = 0; i < 100; ++i) {
        const Lock_guard lock(m);
        queue.push_back(i);
        cv.notify_one();
    }
    {
        const Lock_guard lock(m);
        done = true;
        cv.notify_one();
    }
    consumer.join();
}

TEST(Sync, CondVarWaitForTimesOut)
{
    Mutex m("test_cv_timeout", Lock_rank::leaf);
    Cond_var cv;
    Unique_lock lock(m);
    const bool signalled =
        cv.wait_for(lock, std::chrono::milliseconds(10), [] { return false; });
    EXPECT_FALSE(signalled);
    EXPECT_TRUE(lock.owns_lock()) << "wait_for must return with the lock held";
}

// ---------------------------------------------------------------------------
// Lock-rank detector (death tests where enabled, silence proofs where not)
// ---------------------------------------------------------------------------

TEST(SyncDetector, CorrectOrderIsSilent)
{
    // The full blessed chain from the hierarchy, in one thread. If the
    // detector mis-fired on legal nesting, every test in the repo would die.
    Mutex admin("daemon_admin", Lock_rank::daemon_admin);
    Shared_mutex membership("router_membership", Lock_rank::router_membership);
    Mutex server("server", Lock_rank::server);
    Mutex job("job", Lock_rank::job);
    Mutex telemetry("telemetry", Lock_rank::telemetry);
    Mutex metrics("metrics_registry", Lock_rank::metrics);

    const Lock_guard l0(admin);
    const Shared_lock l1(membership);
    const Lock_guard l2(server);
    const Lock_guard l3(job);
    const Lock_guard l4(telemetry);
    const Lock_guard l5(metrics);
    SUCCEED();
}

TEST(SyncDetector, OutOfOrderReleaseIsFine)
{
    // Release is not required to be LIFO — only acquisition order is ranked.
    Mutex low("test_low", Lock_rank::server);
    Mutex high("test_high", Lock_rank::telemetry);
    low.lock();
    high.lock();
    low.unlock(); // released before the lock above it on the stack
    high.unlock();
    low.lock(); // stack stayed consistent
    low.unlock();
    SUCCEED();
}

TEST(SyncDetector, SameRankNeverNests)
{
    // Two locks sharing a rank may be held by *different* threads but must
    // never nest in one. Holding just one of them is always fine.
    Mutex policy_writer("test_policy_writer", Lock_rank::state_store_writer);
    Mutex memo_writer("test_memo_writer", Lock_rank::state_store_writer);
    {
        const Lock_guard a(policy_writer);
    }
    {
        const Lock_guard b(memo_writer);
    }
    SUCCEED();
}

TEST(SyncDetectorDeath, InversionAbortsNamingBothLocks)
{
    if (!sync_checks_enabled()) GTEST_SKIP() << "detector compiled out";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Mutex high("test_high_first", Lock_rank::telemetry);
    Mutex low("test_low_second", Lock_rank::server);
    const auto invert = [&] {
        const Lock_guard a(high);
        const Lock_guard b(low); // rank 40 under rank 120: inversion
    };
    EXPECT_DEATH(invert(),
                 "lock-order violation.*test_low_second.*test_high_first");
}

TEST(SyncDetectorDeath, RecursiveAcquisitionAborts)
{
    if (!sync_checks_enabled()) GTEST_SKIP() << "detector compiled out";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Mutex m("test_recursive", Lock_rank::leaf);
    const auto recurse = [&] {
        m.lock();
        m.lock(); // self-deadlock without the detector
    };
    EXPECT_DEATH(recurse(), "recursive acquisition.*test_recursive");
}

TEST(SyncDetectorDeath, SameRankNestingAborts)
{
    if (!sync_checks_enabled()) GTEST_SKIP() << "detector compiled out";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Mutex a("test_same_rank_a", Lock_rank::state_store_writer);
    Mutex b("test_same_rank_b", Lock_rank::state_store_writer);
    const auto nest = [&] {
        const Lock_guard la(a);
        const Lock_guard lb(b); // equal rank: ranks must strictly increase
    };
    EXPECT_DEATH(nest(), "lock-order violation.*test_same_rank_b.*test_same_rank_a");
}

TEST(SyncDetector, TryLockIsRankExempt)
{
    // A failed try_lock cannot deadlock, so taking one against rank order is
    // legal (the daemon's admin gate relies on this). A successful try still
    // records, so later blocking acquisitions are checked against it.
    Mutex high("test_exempt_high", Lock_rank::telemetry);
    Mutex low("test_exempt_low", Lock_rank::daemon_admin);
    const Lock_guard held(high);
    const Try_lock attempt(low); // below held rank — allowed for try
    EXPECT_TRUE(attempt.owns_lock());
}

TEST(SyncDetector, DisabledBuildToleratesInversion)
{
    // The inverse proof: without the detector, the same inversion is
    // undetected (and, being single-threaded, harmless) — demonstrating the
    // checks are truly compiled out rather than merely quiet.
    if (sync_checks_enabled()) GTEST_SKIP() << "detector active in this build";
    Mutex high("test_off_high", Lock_rank::telemetry);
    Mutex low("test_off_low", Lock_rank::server);
    const Lock_guard a(high);
    const Lock_guard b(low);
    SUCCEED();
}

} // namespace
} // namespace xrl
