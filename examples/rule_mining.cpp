// TASO-style automatic rule generation (§3.2): enumerate small operator
// DAGs, fingerprint them on random tensors, verify fingerprint-equal pairs
// on fresh inputs, and serialise the discovered rules to a text file — the
// same generate / serialise / deserialise / activate cycle the paper
// describes.
//
//   ./examples/rule_mining [output-file]
#include <cstdio>
#include <sstream>

#include "rules/generator.h"
#include "rules/serialization.h"

using namespace xrl;

int main(int argc, char** argv)
{
    Generator_config config;
    config.max_ops = 2;
    config.extra_sampled_programs = 500;
    config.max_rules = 32;

    std::printf("enumerating operator DAGs (<= %d ops, %d variables)...\n", config.max_ops,
                config.num_variables);
    const Generation_report report = generate_algebraic_rules(config);

    std::printf("programs enumerated : %d\n", report.programs_enumerated);
    std::printf("fingerprint groups  : %d\n", report.fingerprint_groups);
    std::printf("pairs considered    : %d\n", report.pairs_considered);
    std::printf("pairs verified      : %d\n", report.pairs_verified);
    std::printf("pairs rejected      : %d\n", report.pairs_rejected);
    std::printf("rules emitted       : %zu\n\n", report.patterns.size());

    for (std::size_t i = 0; i < report.patterns.size() && i < 8; ++i) {
        const Pattern& p = report.patterns[i];
        std::printf("rule %-8s source=%zu ops, target=%zu ops\n", p.name.c_str(),
                    p.source.size() - p.source_variables.size(),
                    p.target.size() - p.target_variables.size());
    }

    const std::string path = argc > 1 ? argv[1] : "generated_rules.txt";
    save_patterns(path, report.patterns);
    std::printf("\nserialised to %s\n", path.c_str());

    const auto reloaded = load_patterns(path);
    std::printf("deserialised %zu rules back — ready to activate.\n", reloaded.size());
    return reloaded.size() == report.patterns.size() ? 0 : 1;
}
