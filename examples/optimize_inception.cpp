// Convnet scenario: InceptionV3. Demonstrates why the end-to-end feedback
// signal matters — batch-norm folding looks *worse* to the sum-of-kernels
// cost model (it adds weight-arithmetic kernels) but much better end to
// end (those kernels are constant-folded offline). TASO therefore skips
// it; the RL agent takes it.
//
//   ./examples/optimize_inception
#include <cstdio>

#include "core/xrlflow.h"
#include "models/models.h"
#include "optimizers/taso/taso_optimizer.h"
#include "rules/bespoke_rules.h"
#include "rules/corpus.h"
#include "support/config.h"

using namespace xrl;

int main()
{
    const int episodes = episodes_from_env() > 0 ? episodes_from_env() : 8;
    const Graph model = make_inception_v3(Scale::smoke);
    std::printf("InceptionV3 graph: %zu nodes\n", model.size());

    const Cost_model cost(gtx1080_profile());
    E2e_simulator simulator(gtx1080_profile(), 5);

    // Show the cost-model blind spot on one batch-norm fold.
    const auto fold_rule = make_fold_batch_norm_rule();
    const auto folded_once = fold_rule->apply_all(model, 1);
    if (!folded_once.empty()) {
        std::printf("\none batch-norm fold:\n");
        std::printf("  cost model : %.4f -> %.4f ms  (thinks it got WORSE)\n",
                    cost.graph_cost_ms(model), cost.graph_cost_ms(folded_once.front()));
        std::printf("  end-to-end : %.4f -> %.4f ms  (actually improved)\n\n",
                    simulator.noiseless_ms(model), simulator.noiseless_ms(folded_once.front()));
    }

    const Rule_set rules = standard_rule_corpus();
    const Taso_result taso = optimise_taso(model, rules, cost);
    std::printf("TASO    : %.4f -> %.4f ms end-to-end\n", simulator.noiseless_ms(model),
                simulator.noiseless_ms(taso.best_graph));

    Xrlflow_config config;
    config.agent.gnn.hidden_dim = 16;
    config.agent.gnn.global_dim = 16;
    config.agent.head_hidden = {64, 32};
    config.agent.max_candidates = 31;
    config.trainer.update_every_episodes = 4;
    config.trainer.ppo.minibatch_size = 8;
    config.inference_rollouts = 4;
    Xrlflow system(rules, config);
    std::printf("training X-RLflow for %d episodes...\n", episodes);
    system.train(model, episodes);
    const Optimisation_outcome outcome = system.optimise(model);
    std::printf("X-RLflow: %.4f -> %.4f ms end-to-end (%.1f%% speedup)\n", outcome.initial_ms,
                outcome.final_ms, (outcome.speedup() - 1.0) * 100.0);

    int folds = 0;
    for (std::size_t r = 0; r < rules.size(); ++r)
        if (rules[r]->name() == "fold-batch-norm-into-conv") folds = outcome.rule_counts[r];
    std::printf("batch-norm folds taken by the agent: %d\n", folds);
    return 0;
}
