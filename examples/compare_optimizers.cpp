// Run all four optimisers — TASO, Tensat, PET and X-RLflow — on the same
// model through the unified Optimization_service and print a side-by-side
// comparison. No per-backend glue: one facade call drives the whole table.
//
//   ./examples/compare_optimizers
#include <cstdio>

#include "core/optimization_service.h"
#include "models/models.h"
#include "support/config.h"

using namespace xrl;

int main()
{
    const int episodes = episodes_from_env() > 0 ? episodes_from_env() : 8;
    const Graph model = make_bert(Scale::smoke, 32);

    Service_config config;
    config.backend_options["xrlflow.episodes"] = episodes;
    config.backend_options["xrlflow.rollouts"] = 4;
    Optimization_service service(config);

    Optimize_request request;
    request.deterministic = false; // sampled X-RLflow roll-outs

    const std::vector<Backend_run> runs = service.optimize_all(model, request);
    // Every run shares the same baseline measurement; reuse it for the header.
    const Latency_stats initial = runs.front().e2e_before;
    std::printf("model: BERT (%zu nodes), initial %.4f ms\n\n", model.size(), initial.mean_ms);
    std::printf("%-10s %12s %10s %12s   %s\n", "optimiser", "latency", "speedup", "time (s)",
                "notes");
    std::printf("----------------------------------------------------------------\n");

    for (const Backend_run& run : runs) {
        std::string notes;
        if (const auto it = run.result.metadata.find("egraph_nodes");
            it != run.result.metadata.end())
            notes += "e-nodes " + std::to_string(static_cast<long long>(it->second));
        if (const auto it = run.result.metadata.find("training_episodes");
            it != run.result.metadata.end()) {
            notes += "+";
            notes += std::to_string(static_cast<long long>(it->second));
            notes += " training episodes";
        }
        std::printf("%-10s %12.4f %9.1f%% %12.2f   %s\n", run.backend.c_str(),
                    run.e2e_after.mean_ms,
                    (initial.mean_ms / run.e2e_after.mean_ms - 1.0) * 100.0,
                    run.result.wall_seconds, notes.c_str());
    }
    return 0;
}
