// Run all four optimisers — TASO, Tensat, PET and X-RLflow — on the same
// model and print a side-by-side comparison.
//
//   ./examples/compare_optimizers
#include <cstdio>

#include "core/xrlflow.h"
#include "models/models.h"
#include "optimizers/pet/pet_optimizer.h"
#include "optimizers/taso/taso_optimizer.h"
#include "optimizers/tensat/tensat_optimizer.h"
#include "rules/bespoke_rules.h"
#include "rules/corpus.h"
#include "support/config.h"

using namespace xrl;

int main()
{
    const int episodes = episodes_from_env() > 0 ? episodes_from_env() : 8;
    const Graph model = make_bert(Scale::smoke, 32);
    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    E2e_simulator simulator(gtx1080_profile(), 9);
    const Latency_stats initial = simulator.measure_repeated(model, 5);

    std::printf("model: BERT (%zu nodes), initial %.4f ms\n\n", model.size(), initial.mean_ms);
    std::printf("%-10s %12s %10s %12s\n", "optimiser", "latency", "speedup", "time (s)");
    std::printf("------------------------------------------------\n");

    {
        const Taso_result r = optimise_taso(model, rules, cost);
        const Latency_stats ms = simulator.measure_repeated(r.best_graph, 5);
        std::printf("%-10s %12.4f %9.1f%% %12.2f\n", "TASO", ms.mean_ms,
                    (initial.mean_ms / ms.mean_ms - 1.0) * 100.0, r.optimisation_seconds);
    }
    {
        Rule_set multi;
        multi.push_back(make_merge_matmul_shared_lhs_rule());
        const Tensat_result r = optimise_tensat(model, curated_patterns(), multi, cost);
        const Latency_stats ms = simulator.measure_repeated(r.best_graph, 5);
        std::printf("%-10s %12.4f %9.1f%% %12.2f   (e-nodes %zu%s)\n", "Tensat", ms.mean_ms,
                    (initial.mean_ms / ms.mean_ms - 1.0) * 100.0, r.optimisation_seconds,
                    r.egraph_nodes, r.saturated ? ", saturated" : "");
    }
    {
        const Pet_result r = optimise_pet(model, cost);
        const Latency_stats ms = simulator.measure_repeated(r.best_graph, 5);
        std::printf("%-10s %12.4f %9.1f%% %12.2f\n", "PET", ms.mean_ms,
                    (initial.mean_ms / ms.mean_ms - 1.0) * 100.0, r.optimisation_seconds);
    }
    {
        Xrlflow_config config;
        config.agent.gnn.hidden_dim = 16;
        config.agent.gnn.global_dim = 16;
        config.agent.head_hidden = {64, 32};
        config.agent.max_candidates = 31;
        config.trainer.update_every_episodes = 4;
        config.trainer.ppo.minibatch_size = 8;
        config.inference_rollouts = 4;
        Xrlflow system(rules, config);
        system.train(model, episodes);
        const Optimisation_outcome outcome = system.optimise(model);
        const Latency_stats ms = simulator.measure_repeated(outcome.best_graph, 5);
        std::printf("%-10s %12.4f %9.1f%% %12.2f   (+%d training episodes)\n", "X-RLflow",
                    ms.mean_ms, (initial.mean_ms / ms.mean_ms - 1.0) * 100.0,
                    outcome.optimisation_seconds, episodes);
    }
    return 0;
}
