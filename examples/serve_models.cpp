// Serving: drive a mixed BERT / Inception-v3 / ViT workload through the
// async Optimization_server — tiered priorities, a deadline, duplicate
// submissions that coalesce, a cancellation, and a final telemetry
// snapshot.
//
//   ./examples/serve_models
#include <cstdio>
#include <string>
#include <vector>

#include "models/models.h"
#include "serve/server.h"
#include "support/config.h"

using namespace xrl;

int main()
{
    // A priority-ordered server: interactive compilation requests outrank
    // batch ones. Backend budgets are smoke-scale so the example runs in
    // seconds on a laptop CPU.
    Server_config config;
    config.queue.policy = Queue_policy::priority;
    config.service.backend_options = {{"taso.budget", 30},
                                      {"pet.budget", 15},
                                      {"tensat.max_iterations", 3},
                                      {"xrlflow.episodes", 0},
                                      {"xrlflow.max_steps", 10}};
    Optimization_server server(config);

    const Graph bert = make_bert(Scale::smoke, 32);
    const Graph inception = make_inception_v3(Scale::smoke);
    const Graph vit = make_vit(Scale::smoke, 64);

    // 1. An interactive request (high priority, 10 s deadline) next to
    //    batch work, all submitted up front.
    std::printf("submitting a mixed workload...\n");
    std::vector<std::pair<std::string, Job_handle>> jobs;
    jobs.emplace_back("bert/taso (interactive)",
                      server.submit("taso", bert, {},
                                    {.priority = 10, .deadline_seconds = 10.0}));
    jobs.emplace_back("inception/taso (batch)", server.submit("taso", inception, {}, {.priority = 1}));
    jobs.emplace_back("vit/pet (batch)", server.submit("pet", vit, {}, {.priority = 1}));
    jobs.emplace_back("bert/tensat (batch)", server.submit("tensat", bert, {}, {.priority = 1}));

    // 2. Duplicate submissions: identical (graph, backend, request) attach
    //    to the in-flight job instead of searching again.
    const Job_handle duplicate = server.submit("taso", bert, {}, {.priority = 2});
    std::printf("duplicate bert/taso coalesced: %s\n", duplicate.coalesced() ? "yes" : "no");

    // 3. A submission we change our mind about.
    Job_handle regretted = server.submit("xrlflow", inception, {}, {.priority = 0});
    regretted.cancel();
    std::printf("cancelled xrlflow job state : %s\n", to_string(regretted.poll()));

    // 4. Collect results as they finish.
    for (const auto& [label, handle] : jobs) {
        const Optimize_result result = handle.wait();
        std::printf("%-26s %8.4f ms -> %8.4f ms (%.2fx)%s\n", label.c_str(), result.initial_ms,
                    result.final_ms, result.speedup(), result.from_cache ? " [cache]" : "");
    }
    server.drain();

    // 5. A repeat of an already-served request is answered by the memo
    //    cache — no queueing, no search.
    const Optimize_result replay = server.submit("taso", bert).wait();
    std::printf("replayed bert/taso from cache: %s\n\n", replay.from_cache ? "yes" : "no");

    // 6. What the fleet did, in one snapshot.
    const Server_stats stats = server.stats();
    std::printf("submitted %llu | coalesced %llu | cache hits %llu | completed %llu | "
                "cancelled %llu | rejected %llu\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.cancelled),
                static_cast<unsigned long long>(stats.rejected));
    std::printf("dedup rate %.0f%% | p50 %.1f ms | p95 %.1f ms\n", 100.0 * stats.dedup_rate(),
                stats.p50_latency_ms, stats.p95_latency_ms);
    for (const auto& [backend, per_backend] : stats.backends)
        std::printf("  %-8s submitted %llu, completed %llu, busy %.2fs\n", backend.c_str(),
                    static_cast<unsigned long long>(per_backend.submitted),
                    static_cast<unsigned long long>(per_backend.completed),
                    per_backend.busy_seconds);
    return 0;
}
