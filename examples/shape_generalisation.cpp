// Generalisation scenario (§4.5 / Figure 7): train once on DALL-E at
// sequence length 64, then optimise sequence lengths the agent never saw.
// The graph *structure* is identical across shapes, so the policy
// transfers; only the edge attributes (tensor shapes) change.
//
//   ./examples/shape_generalisation
#include <cstdio>

#include "core/xrlflow.h"
#include "models/models.h"
#include "rules/corpus.h"
#include "support/config.h"

using namespace xrl;

int main()
{
    const int episodes = episodes_from_env() > 0 ? episodes_from_env() : 8;
    const Rule_set rules = standard_rule_corpus();

    Xrlflow_config config;
    config.agent.gnn.hidden_dim = 16;
    config.agent.gnn.global_dim = 16;
    config.agent.head_hidden = {64, 32};
    config.agent.max_candidates = 31;
    config.trainer.update_every_episodes = 4;
    config.trainer.ppo.minibatch_size = 8;
    config.inference_rollouts = 4;
    Xrlflow system(rules, config);

    std::printf("training on DALL-E with sequence length 64 (%d episodes)...\n", episodes);
    system.train(make_dalle(Scale::smoke, 64), episodes);

    std::printf("\n%-14s %12s %12s %10s\n", "variant", "initial", "optimised", "speedup");
    for (const std::int64_t seq : {32, 48, 64, 96, 128}) {
        const Graph variant = make_dalle(Scale::smoke, seq);
        const Optimisation_outcome outcome = system.optimise(variant);
        std::printf("DALL-E-%-6lld%s %12.4f %12.4f %9.1f%%\n", static_cast<long long>(seq),
                    seq == 64 ? "*" : " ", outcome.initial_ms, outcome.final_ms,
                    (outcome.speedup() - 1.0) * 100.0);
    }
    std::printf("('*' marks the shape the agent was trained on)\n");
    return 0;
}
