// Quickstart: build the paper's Figure-1 graph (y = ReLU(w.x + b)), inspect
// it, optimise it through the unified Optimization_service (TASO backend),
// and verify that the optimised graph computes the same function.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/optimization_service.h"
#include "ir/builder.h"
#include "ir/executor.h"

using namespace xrl;

int main()
{
    // 1. Build a computation graph through the TASO-style builder API.
    Graph_builder builder;
    const Edge x = builder.input({4, 32}, "x");
    const Edge w = builder.weight({32, 16}, "w");
    const Edge bias = builder.weight({16}, "b");
    const Edge y = builder.relu(builder.add(builder.matmul(x, w), bias));
    const Graph graph = builder.finish({y});

    std::printf("Unoptimised graph (%zu nodes):\n%s\n", graph.size(), graph.to_dot().c_str());

    // 2. The service owns the rule corpus, cost model and end-to-end
    //    simulator. Note how the two latency signals disagree (paper
    //    Table 1).
    Optimization_service service;
    std::printf("cost model estimate : %.6f ms\n", service.cost().graph_cost_ms(graph));
    std::printf("end-to-end simulated: %.6f ms\n\n", service.simulator().noiseless_ms(graph));

    // 3. Optimise with the TASO backtracking search via the unified API.
    const Optimize_result result = service.optimize("taso", graph);
    std::printf("TASO: %.6f ms -> %.6f ms (%.2fx, %d search iterations, %.0f candidates)\n",
                result.initial_ms, result.final_ms, result.speedup(), result.steps,
                result.metadata.at("candidates_generated"));
    std::printf("Optimised graph (%zu nodes):\n%s\n", result.best_graph.size(),
                result.best_graph.to_dot().c_str());

    // 4. Verify the transformation preserved semantics by executing both
    //    graphs on the same random inputs.
    Rng rng(42);
    const Binding_map bindings = random_bindings(graph, rng);
    const auto before = execute(graph, bindings);
    const auto after = execute(result.best_graph, bindings);
    const float difference = Tensor::max_abs_difference(before[0], after[0]);
    std::printf("max |before - after| = %.2e  (%s)\n", difference,
                difference < 1e-4F ? "equivalent" : "NOT equivalent!");
    return difference < 1e-4F ? 0 : 1;
}
