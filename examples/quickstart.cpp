// Quickstart: build the paper's Figure-1 graph (y = ReLU(w.x + b)), inspect
// it, optimise it with the TASO baseline, and verify that the optimised
// graph computes the same function.
//
//   ./examples/quickstart
#include <cstdio>

#include "cost/cost_model.h"
#include "cost/e2e_simulator.h"
#include "ir/builder.h"
#include "ir/executor.h"
#include "optimizers/taso/taso_optimizer.h"
#include "rules/corpus.h"

using namespace xrl;

int main()
{
    // 1. Build a computation graph through the TASO-style builder API.
    Graph_builder builder;
    const Edge x = builder.input({4, 32}, "x");
    const Edge w = builder.weight({32, 16}, "w");
    const Edge bias = builder.weight({16}, "b");
    const Edge y = builder.relu(builder.add(builder.matmul(x, w), bias));
    const Graph graph = builder.finish({y});

    std::printf("Unoptimised graph (%zu nodes):\n%s\n", graph.size(), graph.to_dot().c_str());

    // 2. Estimate latency with the sum-of-kernels cost model and the
    //    end-to-end simulator — note they disagree (paper Table 1).
    const Cost_model cost(gtx1080_profile());
    E2e_simulator simulator(gtx1080_profile(), /*seed=*/1);
    std::printf("cost model estimate : %.6f ms\n", cost.graph_cost_ms(graph));
    std::printf("end-to-end simulated: %.6f ms\n\n", simulator.noiseless_ms(graph));

    // 3. Optimise with the TASO backtracking search over the standard
    //    rewrite-rule corpus.
    const Rule_set rules = standard_rule_corpus();
    const Taso_result result = optimise_taso(graph, rules, cost);
    std::printf("TASO: %.6f ms -> %.6f ms (%d search iterations, %d candidates)\n",
                result.initial_cost_ms, result.best_cost_ms, result.iterations,
                result.candidates_generated);
    std::printf("Optimised graph (%zu nodes):\n%s\n", result.best_graph.size(),
                result.best_graph.to_dot().c_str());

    // 4. Verify the transformation preserved semantics by executing both
    //    graphs on the same random inputs.
    Rng rng(42);
    const Binding_map bindings = random_bindings(graph, rng);
    const auto before = execute(graph, bindings);
    const auto after = execute(result.best_graph, bindings);
    const float difference = Tensor::max_abs_difference(before[0], after[0]);
    std::printf("max |before - after| = %.2e  (%s)\n", difference,
                difference < 1e-4F ? "equivalent" : "NOT equivalent!");
    return difference < 1e-4F ? 0 : 1;
}
