// Warm restart: a server that survives its own death without retraining.
//
// X-RLflow's trained policy is reusable state — the paper's central
// argument — so a production server should never pay for PPO training it
// already did in a previous life. This example runs the same request
// through three lives of one serving process:
//
//   life 1: empty store — xrlflow trains a policy (slow), the result and
//           the policy are checkpointed (policies at train time, the memo
//           table on drain);
//   life 2: full restart — the memo snapshot answers the request with a
//           bit-identical result, no search at all;
//   life 3: memo deleted, policies kept — inference re-runs with the
//           loaded policy and reproduces the same outcome, skipping only
//           the training.
//
// Build & run:  ./build/examples/serve_warm_restart
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "ir/builder.h"
#include "serve/server.h"
#include "serve/state_store.h"

using namespace xrl;

namespace {

Server_config serving_config(std::shared_ptr<State_store> store)
{
    Server_config config;
    config.service.backend_options = {{"xrlflow.episodes", 4},
                                      {"xrlflow.max_steps", 10},
                                      {"xrlflow.hidden_dim", 8},
                                      {"xrlflow.max_candidates", 15}};
    config.state_store = std::move(store);
    return config;
}

Optimize_result one_life(const std::string& label, const std::string& store_dir,
                         const Graph& graph)
{
    State_store_config store_config;
    store_config.directory = store_dir;
    auto store = std::make_shared<State_store>(std::move(store_config));
    Optimization_server server(serving_config(store));

    const auto start = std::chrono::steady_clock::now();
    const Optimize_result result = server.submit("xrlflow", graph).wait();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const State_store_stats stats = store->stats();
    std::printf("%-28s %8.3fs   speedup %.2fx   %s%s\n", label.c_str(), seconds,
                result.speedup(),
                result.from_cache ? "memo hit (no search ran)"
                                  : (stats.policy_hits > 0 ? "policy warm start (no training)"
                                                           : "trained from scratch"),
                stats.skipped_corrupt + stats.skipped_version > 0 ? "  [store damage skipped]"
                                                                  : "");
    server.drain(); // snapshots the memo table before this life ends
    return result;
}

} // namespace

int main()
{
    namespace fs = std::filesystem;
    const fs::path store_dir = fs::temp_directory_path() / "xrlflow_example_warm_restart";
    fs::remove_all(store_dir);

    // y = relu(x.Wq) + relu(x.Wk): small, but with real rewrite structure.
    Graph_builder b;
    const Edge x = b.input({8, 32}, "x");
    const Edge wq = b.weight({32, 16});
    const Edge wk = b.weight({32, 16});
    const Graph graph = b.finish({b.add(b.relu(b.matmul(x, wq)), b.relu(b.matmul(x, wk)))});

    std::printf("Serving the same request across three process lives:\n\n");
    const Optimize_result cold = one_life("life 1: cold start", store_dir.string(), graph);
    const Optimize_result memo = one_life("life 2: full warm restart", store_dir.string(), graph);

    fs::remove(store_dir / "memo.xrls"); // lose the memo, keep the policies
    const Optimize_result policy =
        one_life("life 3: policy-only restart", store_dir.string(), graph);

    const bool same_graph =
        memo.best_graph.model_hash() == cold.best_graph.model_hash() &&
        policy.best_graph.model_hash() == cold.best_graph.model_hash();
    std::printf("\nall three lives produced the same optimised graph: %s\n",
                same_graph ? "yes" : "NO");

    fs::remove_all(store_dir);
    return same_graph ? 0 : 1;
}
