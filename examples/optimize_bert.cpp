// Transformer scenario: train an X-RLflow agent on BERT, optimise, and
// compare with TASO. Shows the rewrite sequence the agent discovered —
// including the Q/K/V projection merges and the embedding-projection fold
// that the cost model rejects but the end-to-end signal rewards.
//
//   ./examples/optimize_bert            # quick demo (8 episodes)
//   XRLFLOW_EPISODES=100 ./examples/optimize_bert
#include <cstdio>

#include "core/xrlflow.h"
#include "models/models.h"
#include "optimizers/taso/taso_optimizer.h"
#include "rules/corpus.h"
#include "support/config.h"

using namespace xrl;

int main()
{
    const int episodes = episodes_from_env() > 0 ? episodes_from_env() : 8;
    const Graph bert = make_bert(Scale::smoke, 32);
    std::printf("BERT graph: %zu nodes\n", bert.size());

    const Rule_set rules = standard_rule_corpus();
    E2e_simulator simulator(gtx1080_profile(), 3);
    const Latency_stats initial = simulator.measure_repeated(bert, 5);
    std::printf("initial latency: %.4f ms (±%.4f over 5 runs)\n\n", initial.mean_ms,
                initial.std_ms);

    // Baseline: TASO's cost-model-guided backtracking search.
    const Cost_model cost(gtx1080_profile());
    const Taso_result taso = optimise_taso(bert, rules, cost);
    const Latency_stats taso_ms = simulator.measure_repeated(taso.best_graph, 5);
    std::printf("TASO   : %.4f ms (%.1f%% speedup, %.2f s)\n", taso_ms.mean_ms,
                (initial.mean_ms / taso_ms.mean_ms - 1.0) * 100.0, taso.optimisation_seconds);

    // X-RLflow: train briefly, then optimise greedily.
    Xrlflow_config config;
    config.agent.gnn.hidden_dim = 16;
    config.agent.gnn.global_dim = 16;
    config.agent.head_hidden = {64, 32};
    config.agent.max_candidates = 31;
    config.trainer.update_every_episodes = 4;
    config.trainer.ppo.minibatch_size = 8;
    config.inference_rollouts = 4;
    Xrlflow system(rules, config);
    std::printf("training X-RLflow for %d episodes...\n", episodes);
    system.train(bert, episodes);

    const Optimisation_outcome outcome = system.optimise(bert);
    const Latency_stats xrl_ms = simulator.measure_repeated(outcome.best_graph, 5);
    std::printf("X-RLflow: %.4f ms (%.1f%% speedup, %d steps)\n\n", xrl_ms.mean_ms,
                (initial.mean_ms / xrl_ms.mean_ms - 1.0) * 100.0, outcome.steps);

    std::printf("rewrites applied by the agent:\n");
    for (std::size_t r = 0; r < rules.size(); ++r)
        if (outcome.rule_counts[r] > 0)
            std::printf("  %3dx %s\n", outcome.rule_counts[r], rules[r]->name().c_str());
    return 0;
}
