// Devices & routing: serve a heterogeneous accelerator fleet.
//
// One Optimization_router fronts two device-affine shards (a gtx1080-class
// box and an a100-class box). Requests carry their Target_device — a
// registered name or an inline one-off profile — and the router sends each
// to the shard that claimed that accelerator; devices no shard claims fall
// back to a deterministic hash. The same model optimised for different
// devices yields different graphs/latencies and never shares cache entries.
//
//   ./examples/serve_fleet
#include <cstdio>
#include <string>
#include <vector>

#include "models/models.h"
#include "serve/router.h"

using namespace xrl;

int main()
{
    // Smoke-scale budgets so the example runs in seconds on a laptop CPU.
    Server_config box;
    box.service.backend_options = {{"taso.budget", 30},
                                   {"pet.budget", 15},
                                   {"tensat.max_iterations", 3},
                                   {"xrlflow.episodes", 0},
                                   {"xrlflow.max_steps", 10}};

    // Two shards, each claiming one accelerator. Every shard's service
    // holds the standard device registry (gtx1080-sim + a100-sim), so
    // either could serve either device — affinity is placement, not
    // capability.
    Router_config fleet;
    Shard_config gtx_box;
    gtx_box.server = box;
    gtx_box.device_affinity = {"gtx1080-sim"};
    Shard_config a100_box;
    a100_box.server = box;
    a100_box.device_affinity = {"a100-sim"};
    fleet.shards = {gtx_box, a100_box};
    Optimization_router router(fleet);

    const Graph bert = make_bert(Scale::smoke, 32);

    // 1. The same model, optimised for each accelerator: the device rides
    //    on the request, and the router places each search on its shard.
    Optimize_request for_gtx;
    for_gtx.device = "gtx1080-sim";
    Optimize_request for_a100;
    for_a100.device = "a100-sim";
    std::printf("bert/taso routes: gtx1080 -> shard %zu, a100 -> shard %zu\n",
                router.route("taso", bert, for_gtx), router.route("taso", bert, for_a100));

    const Optimize_result on_gtx = router.submit("taso", bert, for_gtx).wait();
    const Optimize_result on_a100 = router.submit("taso", bert, for_a100).wait();
    std::printf("bert/taso on %-12s %8.4f ms -> %8.4f ms (%.2fx)\n", on_gtx.device.c_str(),
                on_gtx.initial_ms, on_gtx.final_ms, on_gtx.speedup());
    std::printf("bert/taso on %-12s %8.4f ms -> %8.4f ms (%.2fx)\n", on_a100.device.c_str(),
                on_a100.initial_ms, on_a100.final_ms, on_a100.speedup());

    // 2. An inline one-off profile — hardware the fleet never registered.
    //    No shard claims it, so the router hash-routes it; the serving
    //    shard caches its cost model and simulator by fingerprint.
    Device_profile overclocked = a100_profile();
    overclocked.name = "a100-overclocked";
    overclocked.flops_per_ms *= 1.2;
    Optimize_request custom;
    custom.device = Target_device(overclocked);
    const Optimize_result on_custom = router.submit("taso", bert, custom).wait();
    std::printf("bert/taso on %-12s (inline profile, hash-routed) -> %8.4f ms\n",
                on_custom.device.c_str(), on_custom.final_ms);

    // 3. Replays hit the owning shard's memo cache — routing is
    //    deterministic, so a repeat always finds its original's entry.
    const Optimize_result replay = router.submit("taso", bert, for_a100).wait();
    std::printf("replayed bert/taso on a100 from cache: %s\n",
                replay.from_cache ? "yes" : "no");
    router.drain();

    // 4. Fleet-wide telemetry: per-shard snapshots plus the aggregate.
    const Router_stats stats = router.stats();
    std::printf("\nfleet: submitted %llu (affinity %llu, hash %llu), completed %llu\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.affinity_routed),
                static_cast<unsigned long long>(stats.hash_routed),
                static_cast<unsigned long long>(stats.total.completed));
    for (std::size_t i = 0; i < stats.shards.size(); ++i)
        std::printf("  shard %zu: routed %llu, completed %llu, cache hits %llu\n", i,
                    static_cast<unsigned long long>(stats.routed_to[i]),
                    static_cast<unsigned long long>(stats.shards[i].completed),
                    static_cast<unsigned long long>(stats.shards[i].cache_hits));
    return 0;
}
