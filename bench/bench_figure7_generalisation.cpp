// Figure 7: generalisation to unseen tensor shapes. Each agent is trained
// once on the default shape (marked '*') and then optimises shape variants
// of the same architecture without retraining — the tensor graph structure
// is unchanged, only the edge attributes (shapes) differ (§4.5).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "rules/corpus.h"

using namespace xrlbench;

namespace {

void evaluate(Xrlflow& system, const char* label, const Graph& variant, bool trained_on)
{
    E2e_simulator sim(gtx1080_profile(), 0x1234);
    const Latency_stats initial = sim.measure_repeated(variant, 5);
    const Optimisation_outcome outcome = system.optimise(variant);
    const Latency_stats optimised = sim.measure_repeated(outcome.best_graph, 5);
    const double speedup = (initial.mean_ms / optimised.mean_ms - 1.0) * 100.0;
    std::printf("%-18s%s %12.4f %12.4f %10.1f%%\n", label, trained_on ? "*" : " ",
                initial.mean_ms, optimised.mean_ms, speedup);
    std::fflush(stdout);
}

} // namespace

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Figure 7: generalisation to unseen tensor shapes ('*' = trained shape)");

    const Rule_set rules = standard_rule_corpus();

    std::printf("%-19s %12s %12s %11s\n", "variant", "initial", "optimised", "speedup");
    std::printf("-----------------------------------------------------------\n");

    // DALL-E: trained at sequence length 64, evaluated at 48/64/96.
    {
        const Model_spec spec{"DALL-E", "transformer",
                              [&] { return make_dalle(setup.scale, 64); }};
        const auto system = trained_system(rules, spec, setup);
        for (const std::int64_t seq : {48, 64, 96}) {
            const std::string label = "DALL-E-" + std::to_string(seq);
            evaluate(*system, label.c_str(), make_dalle(setup.scale, seq), seq == 64);
        }
    }

    // InceptionV3: trained at image 224, evaluated at 192/224/256.
    {
        const Model_spec spec{"InceptionV3", "convolutional",
                              [&] { return make_inception_v3(setup.scale, 224); }};
        const auto system = trained_system(rules, spec, setup);
        for (const std::int64_t image : {192, 224, 256}) {
            const std::string label = "InceptionV3-" + std::to_string(image);
            evaluate(*system, label.c_str(), make_inception_v3(setup.scale, image), image == 224);
        }
    }

    std::printf("\nPaper Figure 7: the policy trained on one static shape achieves\n"
                "comparable speedups on the other input shapes of the same graph.\n");
    return 0;
}
