#include "bench_common.h"

#include <cstdio>
#include <filesystem>

#include "support/logging.h"

namespace xrlbench {

Bench_setup setup_from_env(int smoke_episodes, int paper_episodes)
{
    Bench_setup setup;
    setup.scale = scale_from_env();
    setup.seed = seed_from_env();
    setup.episodes = setup.scale == Scale::paper ? paper_episodes : smoke_episodes;
    if (const int override_episodes = episodes_from_env(); override_episodes > 0)
        setup.episodes = override_episodes;
    return setup;
}

Xrlflow_config default_xrlflow_config(const Bench_setup& setup)
{
    Xrlflow_config config;
    config.seed = setup.seed;
    if (setup.scale == Scale::paper) {
        config.agent.gnn.hidden_dim = 32;
        config.agent.gnn.global_dim = 32;
        config.agent.head_hidden = {256, 64}; // Table 4
        config.agent.max_candidates = 63;
        config.env.max_steps = 64;
    } else {
        config.agent.gnn.hidden_dim = 16;
        config.agent.gnn.global_dim = 16;
        config.agent.head_hidden = {64, 32};
        config.agent.max_candidates = 31;
        config.env.max_steps = 40;
    }
    config.agent.gnn.num_gat_layers = 5;      // Table 4: k
    config.env.feedback_frequency = 5;        // Table 4: N
    // Short smoke-scale training cannot match the paper's 1000+ episodes;
    // a few stochastic inference roll-outs compensate (see Xrlflow_config).
    config.inference_rollouts = setup.scale == Scale::paper ? 1 : 6;
    config.trainer.update_every_episodes = setup.scale == Scale::paper ? 10 : 4;
    config.trainer.ppo.minibatch_size = setup.scale == Scale::paper ? 16 : 8;
    config.trainer.ppo.epochs = 2;
    config.trainer.seed = setup.seed;
    return config;
}

Taso_config default_taso_config(const Bench_setup& setup)
{
    Taso_config config;
    config.budget = setup.scale == Scale::paper ? 200 : 40;
    return config;
}

Service_config default_service_config(const Bench_setup& setup)
{
    Service_config config;
    config.simulator_seed = setup.seed;
    const Taso_config taso = default_taso_config(setup);
    config.backend_options["taso.budget"] = taso.budget;
    config.backend_options["pet.budget"] = taso.budget;
    config.backend_options["tensat.max_iterations"] = setup.scale == Scale::paper ? 6 : 3;
    config.backend_options["xrlflow.episodes"] = setup.episodes;
    return config;
}

std::string policy_cache_path(const std::string& model_name, const Bench_setup& setup)
{
    std::string clean = model_name;
    for (char& c : clean)
        if (c == ' ' || c == '/') c = '_';
    const char* scale_name = setup.scale == Scale::paper ? "paper" : "smoke";
    return "xrlflow_policies/" + clean + "_" + scale_name + "_" +
           std::to_string(setup.episodes) + ".bin";
}

std::unique_ptr<Xrlflow> trained_system(const Rule_set& rules, const Model_spec& spec,
                                        const Bench_setup& setup)
{
    auto system = std::make_unique<Xrlflow>(rules, default_xrlflow_config(setup));
    const std::string path = policy_cache_path(spec.name, setup);
    if (std::filesystem::exists(path)) {
        system->load_policy(path);
        log_info("loaded cached policy for ", spec.name, " from ", path);
        return system;
    }
    log_info("training ", spec.name, " for ", setup.episodes, " episodes...");
    system->train(spec.build(), setup.episodes);
    std::filesystem::create_directories("xrlflow_policies");
    system->save_policy(path);
    return system;
}

void print_header(const std::string& title)
{
    std::printf("\n================================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================================\n");
}

} // namespace xrlbench
