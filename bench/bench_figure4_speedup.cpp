// Figure 4: end-to-end inference speedup of TASO and X-RLflow over the
// unoptimised graph, across the seven evaluation DNNs (5 measurement
// repeats each).
//
// Paper shape: X-RLflow >= TASO on every model; TASO goes *negative* on
// SqueezeNet (misled by its cost model); ViT shows the >40% X-RLflow win
// (constant-folding discovered through the end-to-end signal).
//
// This bench also trains and caches the per-model policies that
// bench_figure5/6/7 reuse — run it first.
#include <cstdio>

#include "bench_common.h"
#include "rules/corpus.h"

using namespace xrlbench;

namespace {

void print_hyperparameters(const Xrlflow_config& config)
{
    std::printf("Hyper-parameters (paper Table 4):\n");
    std::printf("  learning rate        %.0e\n", config.trainer.ppo.adam.learning_rate);
    std::printf("  value loss coef c1   %.2f\n", config.trainer.ppo.value_coef);
    std::printf("  entropy coef c2      %.2f\n", config.trainer.ppo.entropy_coef);
    std::printf("  edge normaliser M    4096\n");
    std::printf("  GAT layers k         %d\n", config.agent.gnn.num_gat_layers);
    std::printf("  update frequency     %d episodes\n", config.trainer.update_every_episodes);
    std::printf("  feedback frequency N %d\n", config.env.feedback_frequency);
    std::printf("  MLP heads            [%lld, %lld]\n",
                static_cast<long long>(config.agent.head_hidden[0]),
                static_cast<long long>(config.agent.head_hidden[1]));
    std::printf("  batch size           %d\n\n", config.trainer.ppo.minibatch_size);
}

} // namespace

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Figure 4: end-to-end speedup — TASO vs X-RLflow");
    print_hyperparameters(default_xrlflow_config(setup));

    const Rule_set rules = standard_rule_corpus();
    Optimization_service service(default_service_config(setup));

    std::printf("%-14s %14s %14s %16s %16s\n", "DNN", "initial (ms)", "TASO (ms)",
                "TASO speedup", "X-RLflow speedup");
    std::printf("--------------------------------------------------------------------------------\n");

    for (const Model_spec& spec : evaluation_models(setup.scale)) {
        const Graph model = spec.build();
        E2e_simulator sim(gtx1080_profile(), setup.seed ^ 0x44ULL);
        const Latency_stats initial = sim.measure_repeated(model, 5);

        const Optimize_result taso = service.optimize("taso", model);
        const Latency_stats taso_ms = sim.measure_repeated(taso.best_graph, 5);

        const auto system = trained_system(rules, spec, setup);
        const Optimisation_outcome outcome = system->optimise(model);
        const Latency_stats xrl_ms = sim.measure_repeated(outcome.best_graph, 5);

        const double taso_speedup = (initial.mean_ms / taso_ms.mean_ms - 1.0) * 100.0;
        const double xrl_speedup = (initial.mean_ms / xrl_ms.mean_ms - 1.0) * 100.0;
        std::printf("%-14s %8.4f±%.4f %8.4f±%.4f %15.1f%% %15.1f%%\n", spec.name.c_str(),
                    initial.mean_ms, initial.std_ms, taso_ms.mean_ms, taso_ms.std_ms,
                    taso_speedup, xrl_speedup);
        std::fflush(stdout);
    }
    std::printf("\nPaper Figure 4: X-RLflow >= TASO everywhere; TASO negative on\n"
                "SqueezeNet; ViT > 40%% for X-RLflow.\n");
    return 0;
}
