// Ablations over the design choices DESIGN.md calls out, on BERT:
//   1. feedback frequency N (sparse E2E reward, §3.3.3 / Table 4),
//   2. GAT depth k (§3.4 / Table 4),
//   3. invalid-action masking vs penalty termination (§3.3.2),
//   4. device profile sensitivity of the cost model (§4.2 note).
#include <cstdio>

#include "bench_common.h"
#include "rules/corpus.h"

using namespace xrlbench;

namespace {

struct Ablation_result {
    double mean_return = 0.0;
    double speedup_percent = 0.0;
};

Ablation_result run_variant(const Rule_set& rules, const Bench_setup& setup,
                            const Xrlflow_config& config, int episodes)
{
    Xrlflow system(rules, config);
    const Graph model = make_bert(setup.scale, 32);
    system.train(model, episodes);

    Ablation_result result;
    int counted = 0;
    const auto& history = system.training_history();
    for (std::size_t i = history.size() >= 3 ? history.size() - 3 : 0; i < history.size(); ++i) {
        result.mean_return += history[i].episode_return;
        ++counted;
    }
    if (counted > 0) result.mean_return /= counted;

    E2e_simulator sim(gtx1080_profile(), 0x55AA);
    const Latency_stats initial = sim.measure_repeated(model, 5);
    const Optimisation_outcome outcome = system.optimise(model);
    const Latency_stats optimised = sim.measure_repeated(outcome.best_graph, 5);
    result.speedup_percent = (initial.mean_ms / optimised.mean_ms - 1.0) * 100.0;
    return result;
}

} // namespace

int main()
{
    const Bench_setup setup = setup_from_env(/*smoke_episodes=*/6, /*paper_episodes=*/200);
    print_header("Ablations (BERT): reward frequency N, GAT depth k, masking policy");

    const Rule_set rules = standard_rule_corpus();
    const int episodes = setup.episodes;

    std::printf("%-34s %16s %12s\n", "variant", "mean return", "speedup");
    std::printf("----------------------------------------------------------------\n");

    for (const int n : {1, 5, 10}) {
        Xrlflow_config config = default_xrlflow_config(setup);
        config.env.feedback_frequency = n;
        const Ablation_result r = run_variant(rules, setup, config, episodes);
        std::printf("feedback frequency N=%-13d %16.2f %11.1f%%\n", n, r.mean_return,
                    r.speedup_percent);
        std::fflush(stdout);
    }

    for (const int k : {1, 5}) {
        Xrlflow_config config = default_xrlflow_config(setup);
        config.agent.gnn.num_gat_layers = k;
        const Ablation_result r = run_variant(rules, setup, config, episodes);
        std::printf("GAT depth k=%-22d %16.2f %11.1f%%\n", k, r.mean_return, r.speedup_percent);
        std::fflush(stdout);
    }

    {
        Xrlflow_config config = default_xrlflow_config(setup);
        config.env.invalid_policy = Invalid_action_policy::penalise;
        const Ablation_result r = run_variant(rules, setup, config, episodes);
        std::printf("%-34s %16.2f %11.1f%%\n", "penalty instead of masking", r.mean_return,
                    r.speedup_percent);
    }

    // Device sensitivity: the same graph ranks differently on different
    // hardware profiles (the paper notes cost modelling "depends on the
    // execution hardware").
    {
        const Graph model = make_bert(setup.scale, 32);
        const Cost_model gtx(gtx1080_profile());
        const Cost_model a100(a100_profile());
        std::printf("\nDevice sensitivity (unoptimised BERT cost estimate):\n");
        std::printf("  %-12s %10.4f ms\n", gtx.device().name.c_str(), gtx.graph_cost_ms(model));
        std::printf("  %-12s %10.4f ms\n", a100.device().name.c_str(), a100.graph_cost_ms(model));
    }
    return 0;
}
