// Optimization_server serving benchmark: a duplicate-heavy, mixed
// multi-model request stream (BERT / Inception-v3 / ViT across all four
// backends) submitted to the async server versus the same stream optimised
// by serial, uncached Optimization_service calls.
//
// The server's two dedup layers — in-flight request coalescing and the
// post-hoc memo cache — mean each *unique* (model, backend, request) pays
// for one search no matter how many times it appears in the stream, so a
// production-style stream with repeats finishes several times faster than
// serial submission even on a single core. Emits BENCH_server.json (path
// overridable via argv[1]) with makespan, dedup rates, latency
// percentiles, and a parity check against direct service results.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/models.h"
#include "serve/server.h"

namespace {

using namespace xrl;
using xrlbench::print_header;

double seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::map<std::string, double> smoke_backend_options()
{
    return {{"taso.budget", 30},
            {"pet.budget", 15},
            {"tensat.max_iterations", 3},
            {"xrlflow.episodes", 0},
            {"xrlflow.max_steps", 10}};
}

struct Request_spec {
    std::string model;
    std::string backend;
    const Graph* graph = nullptr;
};

} // namespace

int main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_server.json";
    constexpr int kRepeatsPerUnique = 3; // duplicate-heavy: each unique request appears 3x

    print_header("Serving: async Optimization_server vs serial uncached submission");

    const Graph bert = make_bert(Scale::smoke, 32);
    const Graph inception = make_inception_v3(Scale::smoke);
    const Graph vit = make_vit(Scale::smoke, 64);
    const std::vector<std::pair<std::string, const Graph*>> models = {
        {"bert", &bert}, {"inception_v3", &inception}, {"vit", &vit}};
    const std::vector<std::string> backends = {"pet", "taso", "tensat", "xrlflow"};

    // The stream, in two phases that exercise the two dedup layers: a burst
    // of every (model, backend) pair repeated kRepeatsPerUnique times —
    // repeats land while their originals are queued/running and coalesce —
    // followed by a replay wave of each unique pair after the burst
    // resolved, which hits the post-hoc memo cache instead.
    std::vector<Request_spec> burst;
    std::vector<Request_spec> replay;
    for (const auto& [model_name, graph] : models)
        for (const std::string& backend : backends) {
            for (int repeat = 0; repeat < kRepeatsPerUnique; ++repeat)
                burst.push_back({model_name, backend, graph});
            replay.push_back({model_name, backend, graph});
        }
    std::vector<Request_spec> stream = burst;
    stream.insert(stream.end(), replay.begin(), replay.end());
    const std::size_t unique_requests = models.size() * backends.size();

    // -- serial baseline: one blocking, uncached optimize per request ------
    Service_config serial_config;
    serial_config.backend_options = smoke_backend_options();
    serial_config.cache_capacity = 0; // a client loop with no serving layer
    Optimization_service serial_service(serial_config);
    const auto serial_start = std::chrono::steady_clock::now();
    for (const Request_spec& spec : stream) serial_service.optimize(spec.backend, *spec.graph);
    const double serial_seconds = seconds_since(serial_start);

    // -- the server: async submission of the identical stream --------------
    Server_config server_config;
    server_config.service.backend_options = smoke_backend_options();
    Optimization_server server(server_config);
    std::vector<Job_handle> handles;
    handles.reserve(stream.size());
    const auto server_start = std::chrono::steady_clock::now();
    for (const Request_spec& spec : burst)
        handles.push_back(server.submit(spec.backend, *spec.graph));
    for (const Job_handle& handle : handles) handle.wait();
    for (const Request_spec& spec : replay)
        handles.push_back(server.submit(spec.backend, *spec.graph));
    for (const Job_handle& handle : handles) handle.wait();
    const double server_seconds = seconds_since(server_start);

    const Server_stats stats = server.stats();
    const double speedup = serial_seconds / server_seconds;

    // -- parity: served results are bit-identical to direct service calls --
    Optimization_service reference(server_config.service);
    bool parity_ok = true;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Optimize_result served = handles[i].wait(); // terminal: returns instantly
        const Optimize_result direct = reference.optimize(stream[i].backend, *stream[i].graph);
        parity_ok = parity_ok &&
                    served.best_graph.canonical_hash() == direct.best_graph.canonical_hash() &&
                    served.final_ms == direct.final_ms;
    }

    std::printf("%-34s %10zu (%zu unique; %dx burst + replay)\n", "requests", stream.size(),
                unique_requests, kRepeatsPerUnique);
    std::printf("%-34s %9.2fs\n", "serial uncached makespan", serial_seconds);
    std::printf("%-34s %9.2fs\n", "server makespan", server_seconds);
    std::printf("%-34s %9.2fx\n", "makespan speedup", speedup);
    std::printf("%-34s %9.1f%%\n", "coalesce rate", 100.0 * stats.coalesce_rate());
    std::printf("%-34s %9.1f%%\n", "cache-hit rate", 100.0 * stats.cache_hit_rate());
    std::printf("%-34s %9.1f%%\n", "dedup rate (coalesce + cache)", 100.0 * stats.dedup_rate());
    std::printf("%-34s %9.2fms\n", "p50 job latency", stats.p50_latency_ms);
    std::printf("%-34s %9.2fms\n", "p95 job latency", stats.p95_latency_ms);
    std::printf("%-34s %10s\n", "parity vs direct service", parity_ok ? "ok" : "MISMATCH");
    std::printf("\n%-12s %10s %10s %12s\n", "backend", "submitted", "completed", "busy (s)");
    for (const auto& [backend, per_backend] : stats.backends)
        std::printf("%-12s %10llu %10llu %12.2f\n", backend.c_str(),
                    static_cast<unsigned long long>(per_backend.submitted),
                    static_cast<unsigned long long>(per_backend.completed),
                    per_backend.busy_seconds);

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"requests\": " << stream.size() << ",\n"
         << "  \"unique_requests\": " << unique_requests << ",\n"
         << "  \"repeats_per_unique\": " << kRepeatsPerUnique << ",\n"
         << "  \"serial_uncached_seconds\": " << serial_seconds << ",\n"
         << "  \"server_seconds\": " << server_seconds << ",\n"
         << "  \"makespan_speedup\": " << speedup << ",\n"
         << "  \"coalesce_rate\": " << stats.coalesce_rate() << ",\n"
         << "  \"cache_hit_rate\": " << stats.cache_hit_rate() << ",\n"
         << "  \"dedup_rate\": " << stats.dedup_rate() << ",\n"
         << "  \"p50_latency_ms\": " << stats.p50_latency_ms << ",\n"
         << "  \"p95_latency_ms\": " << stats.p95_latency_ms << ",\n"
         << "  \"parity_with_direct_service\": " << (parity_ok ? "true" : "false") << "\n"
         << "}\n";
    std::cout << "\nwrote " << json_path << "\n";

    // The acceptance gates: >= 50% of the stream never paid for a search,
    // >= 2x end-to-end vs serial, and bit-identical results.
    const bool pass = stats.dedup_rate() >= 0.5 && speedup >= 2.0 && parity_ok;
    if (!pass) std::cerr << "ACCEPTANCE FAILED\n";
    return pass ? 0 : 1;
}
