// Figure 8: X-RLflow vs Tensat (equality saturation) on BERT, SqueezeNet,
// ResNext-50 and InceptionV3.
//
// Paper shape: Tensat wins SqueezeNet/ResNext-50; X-RLflow wins BERT (the
// multi-pattern rewrite limit k=1 starves Tensat of the Q/K/V merges) and
// InceptionV3 (combinatorially richest graph).
#include <cstdio>

#include "bench_common.h"
#include "rules/corpus.h"

using namespace xrlbench;

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Figure 8: end-to-end speedup — Tensat vs X-RLflow");

    const Rule_set rules = standard_rule_corpus();

    // The "tensat" backend consumes the curated patterns as e-graph
    // rewrites and the multi-output merges as k-limited multi-pattern
    // rules; node_limit 10000 and k=1 are Tensat's defaults (§2.2.2, §4.6).
    Optimization_service service(default_service_config(setup));

    const char* names[] = {"BERT", "SqueezeNet", "ResNext-50", "InceptionV3"};
    std::printf("%-14s %16s %18s %10s %8s\n", "DNN", "Tensat speedup", "X-RLflow speedup",
                "e-nodes", "sat?");
    std::printf("--------------------------------------------------------------------\n");
    for (const Model_spec& spec : evaluation_models(setup.scale)) {
        bool wanted = false;
        for (const char* n : names) wanted = wanted || spec.name == n;
        if (!wanted) continue;

        const Graph model = spec.build();
        E2e_simulator sim(gtx1080_profile(), setup.seed ^ 0x88ULL);
        const Latency_stats initial = sim.measure_repeated(model, 5);

        const Optimize_result tensat = service.optimize("tensat", model);
        const Latency_stats tensat_ms = sim.measure_repeated(tensat.best_graph, 5);

        const auto system = trained_system(rules, spec, setup);
        const Optimisation_outcome outcome = system->optimise(model);
        const Latency_stats xrl_ms = sim.measure_repeated(outcome.best_graph, 5);

        std::printf("%-14s %15.1f%% %17.1f%% %10.0f %8s\n", spec.name.c_str(),
                    (initial.mean_ms / tensat_ms.mean_ms - 1.0) * 100.0,
                    (initial.mean_ms / xrl_ms.mean_ms - 1.0) * 100.0,
                    tensat.metadata.at("egraph_nodes"),
                    tensat.metadata.at("saturated") > 0.0 ? "yes" : "no");
        std::fflush(stdout);
    }
    std::printf("\nPaper Figure 8: Tensat ahead on SqueezeNet and ResNext-50; X-RLflow\n"
                "ahead on BERT (multi-pattern k=1 limit) and InceptionV3.\n");
    return 0;
}
