// Table 2: PET vs TASO optimised inference latency on ResNet-18 and
// ResNext-50, both driven through the unified Optimization_service.
//
// Paper values: ResNet-18 — PET 1.9619 ms, TASO 2.5534 ms;
// ResNext-50 — PET 10.6694 ms, TASO 6.6453 ms. The shape to reproduce:
// PET's partially-equivalent, element-wise-blind optimisation is
// competitive on the plain ResNet but collapses on the branch-heavy
// grouped-convolution ResNext ("very sensitive to the shape of
// operators", §2.2.2).
#include <cstdio>

#include "bench_common.h"

using namespace xrlbench;

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Table 2: PET vs TASO optimised end-to-end latency (ms)");

    Optimization_service service(default_service_config(setup));

    struct Row {
        const char* name;
        Graph graph;
    };
    Row rows[] = {
        {"ResNet-18", make_resnet18(setup.scale)},
        {"ResNext-50", make_resnext50(setup.scale)},
    };

    std::printf("%-12s %12s %12s %12s\n", "", "initial", "PET", "TASO");
    std::printf("--------------------------------------------------\n");
    for (const Row& row : rows) {
        const Latency_stats initial = service.simulator().measure_repeated(row.graph, 5);
        const Optimize_result pet = service.optimize("pet", row.graph);
        const Optimize_result taso = service.optimize("taso", row.graph);
        const Latency_stats pet_ms = service.simulator().measure_repeated(pet.best_graph, 5);
        const Latency_stats taso_ms = service.simulator().measure_repeated(taso.best_graph, 5);
        std::printf("%-12s %12.4f %12.4f %12.4f\n", row.name, initial.mean_ms, pet_ms.mean_ms,
                    taso_ms.mean_ms);
    }
    std::printf("\nPaper Table 2: ResNet-18 PET 1.96 / TASO 2.55; ResNext-50 PET 10.67 /\n"
                "TASO 6.65 — PET wins the plain residual net, loses badly on grouped\n"
                "convolutions.\n");
    return 0;
}
