// Table 2: PET vs TASO optimised inference latency on ResNet-18 and
// ResNext-50.
//
// Paper values: ResNet-18 — PET 1.9619 ms, TASO 2.5534 ms;
// ResNext-50 — PET 10.6694 ms, TASO 6.6453 ms. The shape to reproduce:
// PET's partially-equivalent, element-wise-blind optimisation is
// competitive on the plain ResNet but collapses on the branch-heavy
// grouped-convolution ResNext ("very sensitive to the shape of
// operators", §2.2.2).
#include <cstdio>

#include "bench_common.h"
#include "optimizers/pet/pet_optimizer.h"
#include "rules/corpus.h"

using namespace xrlbench;

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Table 2: PET vs TASO optimised end-to-end latency (ms)");

    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    E2e_simulator sim(gtx1080_profile(), setup.seed);
    const Taso_config taso_config = default_taso_config(setup);

    struct Row {
        const char* name;
        Graph graph;
    };
    Row rows[] = {
        {"ResNet-18", make_resnet18(setup.scale)},
        {"ResNext-50", make_resnext50(setup.scale)},
    };

    std::printf("%-12s %12s %12s %12s\n", "", "initial", "PET", "TASO");
    std::printf("--------------------------------------------------\n");
    for (const Row& row : rows) {
        const Latency_stats initial = sim.measure_repeated(row.graph, 5);
        const Pet_result pet = optimise_pet(row.graph, cost, taso_config);
        const Taso_result taso = optimise_taso(row.graph, rules, cost, taso_config);
        const Latency_stats pet_ms = sim.measure_repeated(pet.best_graph, 5);
        const Latency_stats taso_ms = sim.measure_repeated(taso.best_graph, 5);
        std::printf("%-12s %12.4f %12.4f %12.4f\n", row.name, initial.mean_ms, pet_ms.mean_ms,
                    taso_ms.mean_ms);
    }
    std::printf("\nPaper Table 2: ResNet-18 PET 1.96 / TASO 2.55; ResNext-50 PET 10.67 /\n"
                "TASO 6.65 — PET wins the plain residual net, loses badly on grouped\n"
                "convolutions.\n");
    return 0;
}
