// Shared helpers for the table/figure reproduction benches.
//
// Scale handling: XRLFLOW_SCALE=smoke (default) runs reduced-width models
// and short training so the whole bench suite finishes in minutes on a
// CPU; XRLFLOW_SCALE=paper runs full-size models and long training.
// XRLFLOW_EPISODES overrides the per-model training episode count;
// XRLFLOW_SEED the master seed.
//
// Trained policies are cached in ./xrlflow_policies/ so the figure benches
// that share agents (4, 5, 6, 7) do not retrain: running
// bench_figure4_speedup first warms the cache for the rest.
#pragma once

#include <memory>
#include <string>

#include "core/optimization_service.h"
#include "core/xrlflow.h"
#include "models/models.h"
#include "optimizers/taso/taso_optimizer.h"
#include "support/config.h"

namespace xrlbench {

using namespace xrl;

struct Bench_setup {
    Scale scale = Scale::smoke;
    std::uint64_t seed = 7;
    int episodes = 10;
};

/// Resolve scale/seed/episodes from the environment.
Bench_setup setup_from_env(int smoke_episodes = 20, int paper_episodes = 600);

/// X-RLflow configuration used across all benches (paper Table 4 values
/// where applicable; reduced network width at smoke scale).
Xrlflow_config default_xrlflow_config(const Bench_setup& setup);

/// TASO search budget per scale.
Taso_config default_taso_config(const Bench_setup& setup);

/// Optimization_service configuration carrying the same per-scale search
/// budgets, for benches that drive backends through the unified API.
Service_config default_service_config(const Bench_setup& setup);

/// Train an agent for `spec`'s model — or load it from the policy cache if
/// a previous bench already trained it. Returns a ready system.
std::unique_ptr<Xrlflow> trained_system(const Rule_set& rules, const Model_spec& spec,
                                        const Bench_setup& setup);

/// ./xrlflow_policies/<model>_<scale>_<episodes>.bin
std::string policy_cache_path(const std::string& model_name, const Bench_setup& setup);

/// Print an 80-column horizontal rule and a centred title.
void print_header(const std::string& title);

} // namespace xrlbench
