// Fleet resilience: one shard of four force-failed mid-stream.
//
// The resilience claim behind the fleet layer (serve/router.h +
// serve/shard_health.h): when a shard starts failing every job, the
// breaker trips after `failure_threshold` consecutive failures, the dead
// shard's rendezvous slice re-spreads over the three survivors, and a
// retrying submitter loses *zero* jobs — with every surviving result
// bit-identical to a healthy run, because the backends are deterministic
// and routing never changes what a search computes. After the fault is
// healed, the open window expires and half-open probes re-admit the shard.
//
// One job stream, three phases against a single 4-shard router:
//   warm    shard 0 executes its first job normally,
//   dead    a Fault_plan rule fails every later job shard 0 executes; the
//           submitter retries failures (the Client's policy, inlined),
//   healed  at 3/4 of the stream the plan is cleared, the open window is
//           slept out, and the next submits probe shard 0 back closed.
//
// Gates (always enforced): availability >= 99% (jobs completed / jobs
// submitted — zero lost), parity with a direct Optimization_service run on
// every job, zero duplicated searches, breaker tripped at least once and
// finished closed. Emits BENCH_resilience.json (path overridable via
// argv[1]).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/optimization_service.h"
#include "core/result_serial.h"
#include "ir/builder.h"
#include "serve/router.h"
#include "serve/shard_health.h"
#include "support/fault_plan.h"

namespace {

using namespace xrl;
using xrlbench::print_header;

double seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::map<std::string, double> smoke_backend_options()
{
    return {{"taso.budget", 30},
            {"pet.budget", 15},
            {"tensat.max_iterations", 3},
            {"xrlflow.episodes", 0},
            {"xrlflow.max_steps", 10}};
}

/// Structurally distinct models (different widths => different routing keys).
Graph variant_graph(int n)
{
    Graph_builder b;
    const Edge x = b.input({4, 24 + n}, "x");
    const Edge w = b.weight({24 + n, 12});
    return b.finish({b.relu(b.matmul(x, w))});
}

/// Bit-exact comparison form: only wall-clock measurements and the cache
/// marker may differ between the resilient run and the healthy reference.
std::string comparable_bytes(Optimize_result result)
{
    result.wall_seconds = 0.0;
    result.from_cache = false;
    result.metadata.erase("training_seconds");
    return result_to_bytes(result);
}

} // namespace

int main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_resilience.json";
    constexpr std::size_t kShards = 4;
    constexpr int kModels = 12;
    constexpr int kMaxAttempts = 8; // the retrying submitter's budget per job
    constexpr double kOpenSeconds = 0.3;

    print_header("Resilience: 4-shard fleet, shard 0 force-failed mid-stream");

    auto plan = std::make_shared<Fault_plan>();
    Router_config config;
    config.shards.resize(kShards);
    for (Shard_config& shard : config.shards)
        shard.server.service.backend_options = smoke_backend_options();
    config.fault_plan = plan;
    config.health.failure_threshold = 2;
    config.health.open_seconds = kOpenSeconds;
    config.health.half_open_probes = 2;
    Optimization_router router(config);

    Optimization_service reference(config.shards[0].server.service);

    // 12 models x 2 backends = 24 jobs, streamed in a deterministic order.
    std::vector<std::pair<std::string, int>> jobs;
    for (int n = 0; n < kModels; ++n)
        for (const char* backend : {"taso", "pet"}) jobs.emplace_back(backend, n);
    const std::size_t heal_at = jobs.size() * 3 / 4;

    // Shard 0 dies after the job it is executing when the stream starts:
    // its first executed job succeeds (the warm phase), everything after
    // fails until the heal.
    plan->add("shard/0", {.begin = 1});

    std::size_t completed = 0;
    std::size_t failed_attempts = 0;
    std::size_t total_attempts = 0;
    bool parity_ok = true;
    bool lost = false;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i == heal_at) {
            // Heal the shard and let the open window expire: the next
            // submits are admitted as half-open probes.
            plan->clear("shard/0");
            std::this_thread::sleep_for(std::chrono::duration<double>(kOpenSeconds * 1.5));
        }
        const Graph graph = variant_graph(jobs[i].second);
        std::string bytes;
        for (int attempt = 0; attempt < kMaxAttempts && bytes.empty(); ++attempt) {
            ++total_attempts;
            try {
                bytes = comparable_bytes(router.submit(jobs[i].first, graph).wait());
            } catch (const std::runtime_error&) {
                ++failed_attempts; // the dead shard refused; resubmit
            }
        }
        if (bytes.empty()) {
            lost = true;
            continue;
        }
        ++completed;
        parity_ok =
            parity_ok && bytes == comparable_bytes(reference.optimize(jobs[i].first, graph));
    }
    router.drain();
    const double stream_seconds = seconds_since(start);

    // The breaker hears the last probe's success just after its waiter
    // wakes; give the completion hook a moment before the final reading.
    Breaker_state final_state = Breaker_state::open;
    for (int spin = 0; spin < 1000; ++spin) {
        final_state = router.stats().health[0].state;
        if (final_state == Breaker_state::closed) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    const Router_stats stats = router.stats();
    const double availability =
        jobs.empty() ? 0.0 : static_cast<double>(completed) / static_cast<double>(jobs.size());
    const bool duplicates = stats.total.completed != completed;

    std::printf("%-34s %9zu\n", "jobs streamed", jobs.size());
    std::printf("%-34s %9zu\n", "jobs completed", completed);
    std::printf("%-34s %9zu / %zu\n", "failed attempts / total attempts", failed_attempts,
                total_attempts);
    std::printf("%-34s %9.4f\n", "availability", availability);
    std::printf("%-34s %9.2fs\n", "stream makespan", stream_seconds);
    std::printf("%-34s %10llu\n", "rerouted around shard 0",
                static_cast<unsigned long long>(stats.breaker_rerouted));
    std::printf("%-34s %10llu / %llu\n", "breaker trips / probes",
                static_cast<unsigned long long>(stats.health[0].trips),
                static_cast<unsigned long long>(stats.health[0].probes));
    std::printf("%-34s %10s\n", "breaker final state", to_string(final_state));
    std::printf("%-34s %10s\n", "parity vs healthy run", parity_ok ? "ok" : "MISMATCH");
    std::printf("%-34s %10s\n", "duplicated searches", duplicates ? "YES" : "none");

    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n"
         << "  \"bench\": \"resilience\",\n"
         << "  \"shards\": " << kShards << ",\n"
         << "  \"jobs\": " << jobs.size() << ",\n"
         << "  \"completed\": " << completed << ",\n"
         << "  \"failed_attempts\": " << failed_attempts << ",\n"
         << "  \"total_attempts\": " << total_attempts << ",\n"
         << "  \"availability\": " << availability << ",\n"
         << "  \"stream_seconds\": " << stream_seconds << ",\n"
         << "  \"breaker_rerouted\": " << stats.breaker_rerouted << ",\n"
         << "  \"probe_routed\": " << stats.probe_routed << ",\n"
         << "  \"breaker_trips\": " << stats.health[0].trips << ",\n"
         << "  \"breaker_final_state\": \"" << to_string(final_state) << "\",\n"
         << "  \"parity_with_healthy_run\": " << (parity_ok ? "true" : "false") << ",\n"
         << "  \"duplicated_searches\": " << (duplicates ? "true" : "false") << ",\n"
         << "  \"lost_jobs\": " << (lost ? jobs.size() - completed : 0) << "\n"
         << "}\n";
    std::cout << "\nwrote " << json_path << "\n";

    // The acceptance gates, all always enforced: nothing lost (availability
    // >= 99%), bit-identical surviving work, no duplicated searches, the
    // breaker actually tripped, and the healed shard was re-admitted.
    const bool pass = availability >= 0.99 && parity_ok && !duplicates &&
                      stats.health[0].trips >= 1 && final_state == Breaker_state::closed;
    if (!pass) std::cerr << "ACCEPTANCE FAILED\n";
    return pass ? 0 : 1;
}
