// Table 1: discrepancy between the TASO-style cost model estimate and the
// end-to-end inference latency on unoptimised DNNs.
//
// Paper values (GTX 1080): DALL-E 5.2%, InceptionV3 10.1%, BERT 7.8%,
// SqueezeNet 7.1%, ResNext-50 24%, T-T 9.9%. The *shape* to reproduce:
// every model shows a non-trivial gap; branch-heavy ResNext-50 is the
// worst (per-kernel overheads the cost model never sees); elementwise-
// heavy transformers can go the other way (runtime fusion).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "cost/cost_model.h"
#include "cost/e2e_simulator.h"

using namespace xrlbench;

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Table 1: cost model vs end-to-end latency (unoptimised DNNs)");

    const Cost_model cost(gtx1080_profile());
    E2e_simulator sim(gtx1080_profile(), setup.seed);

    std::printf("%-14s %-14s %12s %12s %8s\n", "DNN", "type", "cost model", "E2E (ms)", "diff");
    std::printf("--------------------------------------------------------------\n");
    for (const Model_spec& spec : table1_models(setup.scale)) {
        const Graph g = spec.build();
        const double estimate = cost.graph_cost_ms(g);
        const Latency_stats e2e = sim.measure_repeated(g, 5);
        const double diff = std::abs(e2e.mean_ms - estimate) / estimate * 100.0;
        std::printf("%-14s %-14s %12.4f %12.4f %7.1f%%\n", spec.name.c_str(), spec.type.c_str(),
                    estimate, e2e.mean_ms, diff);
    }
    std::printf("\nPaper Table 1 diffs: DALL-E 5.2%%, InceptionV3 10.1%%, BERT 7.8%%,\n"
                "SqueezeNet 7.1%%, ResNext-50 24%%, T-T 9.9%% (absolute values differ:\n"
                "simulated device, reduced model scale).\n");
    return 0;
}
