// Figure 6: optimisation wall-clock time — TASO's search vs X-RLflow's
// greedy inference episode (training time excluded, as in the paper).
//
// Paper shape: TASO < 75 s per model; X-RLflow longer (a forward pass per
// step) but < 200 s — "affordable before model deployment".
#include <cstdio>

#include "bench_common.h"
#include "rules/corpus.h"

using namespace xrlbench;

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Figure 6: optimisation time (seconds)");

    const Rule_set rules = standard_rule_corpus();
    const Cost_model cost(gtx1080_profile());
    const Taso_config taso_config = default_taso_config(setup);

    std::printf("%-14s %14s %18s\n", "DNN", "TASO (s)", "X-RLflow (s)");
    std::printf("------------------------------------------------\n");
    for (const Model_spec& spec : evaluation_models(setup.scale)) {
        const Graph model = spec.build();
        const Taso_result taso = optimise_taso(model, rules, cost, taso_config);
        const auto system = trained_system(rules, spec, setup);
        const Optimisation_outcome outcome = system->optimise(model);
        std::printf("%-14s %14.2f %18.2f\n", spec.name.c_str(), taso.optimisation_seconds,
                    outcome.optimisation_seconds);
        std::fflush(stdout);
    }
    std::printf("\nPaper Figure 6: TASO < 75 s; X-RLflow < 200 s (the agent's forward\n"
                "pass per iteration dominates; CPU-bound in both reproductions).\n");
    return 0;
}
