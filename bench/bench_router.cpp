// Optimization_router fleet benchmark: a mixed two-device request stream
// (gtx1080 + a100 targets over BERT / ViT across the four backends)
// served by (a) one single-worker Optimization_server and (b) an
// Optimization_router fronting two device-affine shards.
//
// The router's win is horizontal scale: each shard is its own server —
// queue, workers, memo cache — so a fleet of two serves the same stream in
// roughly half the wall-clock, while device-affinity routing keeps every
// (model, device) repeat hitting one shard's coalescing window and memo
// cache. Routing is deterministic, so routed results are bit-identical to
// direct per-device Optimization_service calls — the parity gate below.
//
// The makespan gate (>= 2x for 2 shards over 1 server) needs the cores to
// scale into: it is enforced when the host has >= 4 hardware threads (the
// CI runner class) and reported-but-skipped on smaller hosts, where the
// shards' extra workers have no silicon to run on. Emits BENCH_router.json
// (path overridable via argv[1]).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "models/models.h"
#include "serve/router.h"

namespace {

using namespace xrl;
using xrlbench::print_header;

double seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::map<std::string, double> smoke_backend_options()
{
    return {{"taso.budget", 30},
            {"pet.budget", 15},
            {"tensat.max_iterations", 3},
            {"xrlflow.episodes", 0},
            {"xrlflow.max_steps", 10}};
}

Server_config shard_server(std::size_t workers)
{
    Server_config config;
    config.service.backend_options = smoke_backend_options();
    config.workers = workers;
    return config;
}

struct Request_spec {
    std::string model;
    std::string backend;
    std::string device;
    const Graph* graph = nullptr;
};

} // namespace

int main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_router.json";
    constexpr int kRepeatsPerUnique = 2;

    print_header("Fleet: Optimization_router (2 device-affine shards) vs 1 server");

    const Graph bert = make_bert(Scale::smoke, 32);
    const Graph vit = make_vit(Scale::smoke, 64);
    const std::vector<std::pair<std::string, const Graph*>> models = {{"bert", &bert},
                                                                      {"vit", &vit}};
    const std::vector<std::string> backends = {"pet", "taso", "tensat", "xrlflow"};
    const std::vector<std::string> devices = {"gtx1080-sim", "a100-sim"};

    // The mixed stream: every (model, backend, device) triple repeated —
    // repeats land in-flight and coalesce within a shard — interleaved so
    // both devices are live throughout.
    std::vector<Request_spec> stream;
    for (int repeat = 0; repeat < kRepeatsPerUnique; ++repeat)
        for (const auto& [model_name, graph] : models)
            for (const std::string& backend : backends)
                for (const std::string& device : devices)
                    stream.push_back({model_name, backend, device, graph});
    const std::size_t unique_requests = models.size() * backends.size() * devices.size();

    const auto request_for = [](const Request_spec& spec) {
        Optimize_request request;
        request.device = spec.device;
        return request;
    };

    // -- baseline: one single-worker server takes the whole stream ---------
    double single_seconds = 0.0;
    {
        Optimization_server single(shard_server(/*workers=*/1));
        std::vector<Job_handle> handles;
        handles.reserve(stream.size());
        const auto start = std::chrono::steady_clock::now();
        for (const Request_spec& spec : stream)
            handles.push_back(single.submit(spec.backend, *spec.graph, request_for(spec)));
        for (const Job_handle& handle : handles) handle.wait();
        single_seconds = seconds_since(start);
    }

    // -- the fleet: two device-affine shards, two workers each -------------
    Router_config fleet;
    Shard_config gtx_shard;
    gtx_shard.server = shard_server(/*workers=*/2);
    gtx_shard.device_affinity = {"gtx1080-sim"};
    Shard_config a100_shard;
    a100_shard.server = shard_server(/*workers=*/2);
    a100_shard.device_affinity = {"a100-sim"};
    fleet.shards = {gtx_shard, a100_shard};
    Optimization_router router(fleet);

    std::vector<Job_handle> routed;
    routed.reserve(stream.size());
    const auto fleet_start = std::chrono::steady_clock::now();
    for (const Request_spec& spec : stream)
        routed.push_back(router.submit(spec.backend, *spec.graph, request_for(spec)));
    for (const Job_handle& handle : routed) handle.wait();
    const double fleet_seconds = seconds_since(fleet_start);

    const Router_stats stats = router.stats();
    const double speedup = single_seconds / fleet_seconds;

    // -- parity: routed results == direct per-device service calls ---------
    Optimization_service reference(shard_server(1).service);
    bool parity_ok = true;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Optimize_result served = routed[i].wait(); // terminal: returns instantly
        const Optimize_result direct =
            reference.optimize(stream[i].backend, *stream[i].graph, request_for(stream[i]));
        parity_ok = parity_ok &&
                    served.best_graph.canonical_hash() == direct.best_graph.canonical_hash() &&
                    served.final_ms == direct.final_ms && served.device == direct.device;
    }

    const unsigned cores = std::thread::hardware_concurrency();
    const bool enforce_scaling = cores >= 4;

    std::printf("%-34s %10zu (%zu unique x%d; 2 devices)\n", "requests", stream.size(),
                unique_requests, kRepeatsPerUnique);
    std::printf("%-34s %10u\n", "hardware threads", cores);
    std::printf("%-34s %9.2fs\n", "1 server (1 worker) makespan", single_seconds);
    std::printf("%-34s %9.2fs\n", "router, 2 shards makespan", fleet_seconds);
    std::printf("%-34s %9.2fx%s\n", "makespan speedup", speedup,
                enforce_scaling ? "" : "  [gate skipped: < 4 cores]");
    std::printf("%-34s %10llu / %llu\n", "affinity / hash routed",
                static_cast<unsigned long long>(stats.affinity_routed),
                static_cast<unsigned long long>(stats.hash_routed));
    std::printf("%-34s %10s\n", "parity vs direct per-device", parity_ok ? "ok" : "MISMATCH");
    for (std::size_t i = 0; i < stats.shards.size(); ++i)
        std::printf("  shard %zu: routed %llu, completed %llu, coalesced %llu, p95 %.1f ms\n", i,
                    static_cast<unsigned long long>(stats.routed_to[i]),
                    static_cast<unsigned long long>(stats.shards[i].completed),
                    static_cast<unsigned long long>(stats.shards[i].coalesced),
                    stats.shards[i].p95_latency_ms);

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"requests\": " << stream.size() << ",\n"
         << "  \"unique_requests\": " << unique_requests << ",\n"
         << "  \"devices\": 2,\n"
         << "  \"hardware_threads\": " << cores << ",\n"
         << "  \"single_server_seconds\": " << single_seconds << ",\n"
         << "  \"router_seconds\": " << fleet_seconds << ",\n"
         << "  \"makespan_speedup\": " << speedup << ",\n"
         << "  \"affinity_routed\": " << stats.affinity_routed << ",\n"
         << "  \"hash_routed\": " << stats.hash_routed << ",\n"
         << "  \"scaling_gate_enforced\": " << (enforce_scaling ? "true" : "false") << ",\n"
         << "  \"parity_with_direct_service\": " << (parity_ok ? "true" : "false") << "\n"
         << "}\n";
    std::cout << "\nwrote " << json_path << "\n";

    // The acceptance gates: bit-identical routed results always; >= 2x
    // makespan for the 2-shard fleet when the host has cores to scale into.
    const bool pass = parity_ok && (!enforce_scaling || speedup >= 2.0);
    if (!pass) std::cerr << "ACCEPTANCE FAILED\n";
    return pass ? 0 : 1;
}
