// Warm-start persistence benchmark: cold process vs restarted-with-state
// time-to-first-result.
//
// Phase 1 (cold) starts a server over an empty State_store directory and
// submits an xrlflow request — the search trains a policy from scratch —
// then drains, which snapshots the memo table (the policy was written
// through when training finished). Phase 2 (warm restart) rebuilds the
// whole stack over the same directory, as a process restart would, and
// replays the identical request: the memo import answers it without any
// search. Phase 3 (policy-only warm start) deletes the memo snapshot but
// keeps the policies, forcing a real inference pass that skips only the
// dominant cost — training.
//
// Parity gates (always on): the memo-served result must be bit-identical
// to the cold one (modulo the from_cache stamp), and the policy-only rerun
// must reproduce the cold search's deterministic outcome exactly. Emits
// BENCH_warmstart.json (path overridable via argv[1]).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.h"
#include "core/result_serial.h"
#include "ir/builder.h"
#include "serve/server.h"
#include "serve/state_store.h"

namespace {

using namespace xrl;
using xrlbench::print_header;

double seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Training-dominated smoke configuration: enough PPO episodes that the
/// cold phase visibly pays for what the warm phases reuse.
Server_config warm_start_server(std::shared_ptr<State_store> store)
{
    Server_config config;
    config.service.backend_options = {{"xrlflow.episodes", 4},
                                      {"xrlflow.max_steps", 10},
                                      {"xrlflow.hidden_dim", 8},
                                      {"xrlflow.max_candidates", 15}};
    config.state_store = std::move(store);
    return config;
}

/// Byte identity modulo the per-hit from_cache stamp.
std::string fingerprint(Optimize_result result)
{
    result.from_cache = false;
    return result_to_bytes(result);
}

std::string graph_fingerprint(const Graph& graph)
{
    Byte_writer out;
    serialise_graph_binary(out, graph);
    return out.take();
}

} // namespace

int main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_warmstart.json";

    print_header("Warm start: cold training vs checkpointed restart (time-to-first-result)");

    namespace fs = std::filesystem;
    const fs::path store_dir = fs::temp_directory_path() / "xrlflow_bench_warm_start";
    fs::remove_all(store_dir);

    // The attention-projection graph: small enough for CI, rich enough
    // that the xrlflow environment has real rewrites to learn.
    Graph_builder b;
    const Edge x = b.input({8, 32}, "x");
    const Edge wq = b.weight({32, 16});
    const Edge wk = b.weight({32, 16});
    const Graph graph = b.finish({b.add(b.relu(b.matmul(x, wq)), b.relu(b.matmul(x, wk)))});

    // -- phase 1: cold process — trains, then checkpoints ------------------
    Optimize_result cold_result;
    double cold_seconds = 0.0;
    {
        auto store = std::make_shared<State_store>(State_store_config{store_dir.string()});
        Optimization_server server(warm_start_server(store));
        const auto start = std::chrono::steady_clock::now();
        cold_result = server.submit("xrlflow", graph).wait();
        cold_seconds = seconds_since(start);
        server.drain(); // memo snapshot; the policy persisted at train time
    }

    // -- phase 2: restart with full state — memo answers, no search -------
    Optimize_result memo_result;
    double warm_memo_seconds = 0.0;
    {
        auto store = std::make_shared<State_store>(State_store_config{store_dir.string()});
        Optimization_server server(warm_start_server(store));
        const auto start = std::chrono::steady_clock::now();
        memo_result = server.submit("xrlflow", graph).wait();
        warm_memo_seconds = seconds_since(start);
    }

    // -- phase 3: restart with policies only — inference without training --
    fs::remove((store_dir / "memo.xrls"));
    Optimize_result policy_result;
    double warm_policy_seconds = 0.0;
    std::size_t policy_hits = 0;
    {
        auto store = std::make_shared<State_store>(State_store_config{store_dir.string()});
        Optimization_server server(warm_start_server(store));
        const auto start = std::chrono::steady_clock::now();
        policy_result = server.submit("xrlflow", graph).wait();
        warm_policy_seconds = seconds_since(start);
        policy_hits = store->stats().policy_hits;
    }
    fs::remove_all(store_dir);

    // -- parity gates ------------------------------------------------------
    // Memo-served: bit-identical to the cold result (the acceptance bar).
    const bool memo_parity =
        memo_result.from_cache && fingerprint(memo_result) == fingerprint(cold_result);
    // Policy-only: the deterministic search outcome is reproduced exactly;
    // wall-clock fields legitimately differ because inference re-ran.
    const bool policy_parity =
        policy_hits == 1 &&
        graph_fingerprint(policy_result.best_graph) == graph_fingerprint(cold_result.best_graph) &&
        policy_result.final_ms == cold_result.final_ms &&
        policy_result.steps == cold_result.steps &&
        policy_result.rule_counts == cold_result.rule_counts;

    const double memo_speedup = warm_memo_seconds > 0.0 ? cold_seconds / warm_memo_seconds : 0.0;
    const double policy_speedup =
        warm_policy_seconds > 0.0 ? cold_seconds / warm_policy_seconds : 0.0;

    std::printf("%-38s %9.3fs\n", "cold time-to-first-result", cold_seconds);
    std::printf("%-38s %9.3fs (%.0fx)\n", "warm restart (memo + policy)", warm_memo_seconds,
                memo_speedup);
    std::printf("%-38s %9.3fs (%.1fx)\n", "warm restart (policy only)", warm_policy_seconds,
                policy_speedup);
    std::printf("%-38s %9.3fs\n", "training time the restarts skipped",
                cold_result.metadata.count("training_seconds")
                    ? cold_result.metadata.at("training_seconds")
                    : 0.0);
    std::printf("%-38s %10s\n", "memo parity (bit-identical)", memo_parity ? "ok" : "MISMATCH");
    std::printf("%-38s %10s\n", "policy parity (same outcome)", policy_parity ? "ok" : "MISMATCH");

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"cold_seconds\": " << cold_seconds << ",\n"
         << "  \"warm_memo_seconds\": " << warm_memo_seconds << ",\n"
         << "  \"warm_policy_seconds\": " << warm_policy_seconds << ",\n"
         << "  \"memo_speedup\": " << memo_speedup << ",\n"
         << "  \"policy_speedup\": " << policy_speedup << ",\n"
         << "  \"memo_parity\": " << (memo_parity ? "true" : "false") << ",\n"
         << "  \"policy_parity\": " << (policy_parity ? "true" : "false") << "\n"
         << "}\n";
    std::cout << "\nwrote " << json_path << "\n";

    // Acceptance: both parity gates hold, and the memo-backed restart beats
    // the cold path outright (it skips search *and* training; 2x is a
    // deliberately loose floor for noisy CI hosts).
    const bool pass = memo_parity && policy_parity && memo_speedup >= 2.0;
    if (!pass) std::cerr << "ACCEPTANCE FAILED\n";
    return pass ? 0 : 1;
}
