// Network serving plane: concurrent remote clients vs one serial client.
//
// The serving claim behind src/net: the framed wire protocol and the
// xrlflowd session model add little enough overhead that N concurrent
// clients actually saturate the router fleet behind the daemon — the
// fleet's horizontal scale (bench_router) survives the network hop. Two
// phases, each against its *own* fresh daemon (so the second phase cannot
// ride the first's memo cache): a single client driving the job mix
// serially, then 4 clients driving disjoint quarters of the same mix
// concurrently.
//
// Gates: every remote result must be bit-identical (modulo wall-clock
// fields) to a direct Optimization_service call — always enforced; the
// >= 2x makespan speedup for 4 clients over a 2-shard fleet is enforced
// when the host has >= 4 hardware threads (the CI runner class), and
// reported-but-skipped on smaller hosts. Emits BENCH_net.json (path
// overridable via argv[1]).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/optimization_service.h"
#include "core/result_serial.h"
#include "models/models.h"
#include "net/client.h"
#include "net/daemon.h"

namespace {

using namespace xrl;
using xrlbench::print_header;

double seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::map<std::string, double> smoke_backend_options()
{
    return {{"taso.budget", 30},
            {"pet.budget", 15},
            {"tensat.max_iterations", 3},
            {"xrlflow.episodes", 0},
            {"xrlflow.max_steps", 10}};
}

Daemon_config fleet_daemon()
{
    Daemon_config config;
    Shard_config gtx_shard;
    gtx_shard.server.service.backend_options = smoke_backend_options();
    gtx_shard.server.workers = 2;
    gtx_shard.device_affinity = {"gtx1080-sim"};
    Shard_config a100_shard;
    a100_shard.server.service.backend_options = smoke_backend_options();
    a100_shard.server.workers = 2;
    a100_shard.device_affinity = {"a100-sim"};
    config.router.shards = {gtx_shard, a100_shard};
    return config;
}

Client_config client_for(const Daemon& daemon)
{
    Client_config config;
    config.host = daemon.host();
    config.port = daemon.port();
    config.poll_wait_seconds = 0.01; // tight long-poll: measure the fleet, not the poll
    return config;
}

struct Request_spec {
    std::string backend;
    std::string device;
    const Graph* graph = nullptr;
};

Optimize_request request_for(const Request_spec& spec)
{
    Optimize_request request;
    request.device = Target_device(spec.device);
    return request;
}

/// Bit-exact comparison form: only wall-clock measurements and the cache
/// marker may differ between a remote and a local run.
std::string comparable_bytes(Optimize_result result)
{
    result.wall_seconds = 0.0;
    result.from_cache = false;
    result.metadata.erase("training_seconds");
    return result_to_bytes(result);
}

} // namespace

int main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_net.json";
    constexpr int kClients = 4;

    print_header("Network: 4 concurrent remote clients vs 1 serial client (2-shard fleet)");

    const Graph bert = make_bert(Scale::smoke, 32);
    const Graph vit = make_vit(Scale::smoke, 64);
    const std::vector<std::pair<std::string, const Graph*>> models = {{"bert", &bert},
                                                                      {"vit", &vit}};
    const std::vector<std::string> backends = {"taso", "pet"};
    const std::vector<std::string> devices = {"gtx1080-sim", "a100-sim"};

    std::vector<Request_spec> mix;
    for (const auto& [model_name, graph] : models)
        for (const std::string& backend : backends)
            for (const std::string& device : devices) mix.push_back({backend, device, graph});
    // 8 distinct jobs; each concurrent client drives a disjoint quarter.

    // -- phase A: one client, serially, against its own fresh daemon -------
    double serial_seconds = 0.0;
    {
        Daemon daemon(fleet_daemon());
        Client client(client_for(daemon));
        const auto start = std::chrono::steady_clock::now();
        for (const Request_spec& spec : mix)
            (void)client.optimize(spec.backend, *spec.graph, request_for(spec));
        serial_seconds = seconds_since(start);
    }

    // -- phase B: 4 clients, concurrently, against a second fresh daemon ---
    Daemon daemon(fleet_daemon());
    std::vector<Optimize_result> remote(mix.size());
    std::vector<std::thread> threads;
    const auto concurrent_start = std::chrono::steady_clock::now();
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            Client client(client_for(daemon));
            for (std::size_t i = static_cast<std::size_t>(c); i < mix.size();
                 i += static_cast<std::size_t>(kClients))
                remote[i] = client.optimize(mix[i].backend, *mix[i].graph, request_for(mix[i]));
        });
    for (std::thread& thread : threads) thread.join();
    const double concurrent_seconds = seconds_since(concurrent_start);
    const double speedup = concurrent_seconds > 0.0 ? serial_seconds / concurrent_seconds : 0.0;

    // -- parity: remote results == direct in-process service calls ---------
    Optimization_service reference(fleet_daemon().router.shards[0].server.service);
    bool parity_ok = true;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const Optimize_result direct =
            reference.optimize(mix[i].backend, *mix[i].graph, request_for(mix[i]));
        parity_ok = parity_ok && comparable_bytes(remote[i]) == comparable_bytes(direct);
    }

    const Daemon_wire_stats wire = daemon.stats();
    const unsigned cores = std::thread::hardware_concurrency();
    const bool enforce_scaling = cores >= 4;

    std::printf("%-34s %9zu\n", "distinct jobs", mix.size());
    std::printf("%-34s %9.2fs\n", "1 client, serial", serial_seconds);
    std::printf("%-34s %9.2fs\n", "4 clients, concurrent", concurrent_seconds);
    std::printf("%-34s %9.2fx%s\n", "makespan speedup", speedup,
                enforce_scaling ? "" : "  [gate skipped: < 4 cores]");
    std::printf("%-34s %10llu\n", "frames received",
                static_cast<unsigned long long>(wire.frames_received));
    std::printf("%-34s %10llu / %llu\n", "wire jobs / protocol errors",
                static_cast<unsigned long long>(wire.jobs_submitted),
                static_cast<unsigned long long>(wire.protocol_errors));
    std::printf("%-34s %10s\n", "parity vs direct service", parity_ok ? "ok" : "MISMATCH");

    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n"
         << "  \"bench\": \"net\",\n"
         << "  \"clients\": " << kClients << ",\n"
         << "  \"distinct_jobs\": " << mix.size() << ",\n"
         << "  \"serial_seconds\": " << serial_seconds << ",\n"
         << "  \"concurrent_seconds\": " << concurrent_seconds << ",\n"
         << "  \"makespan_speedup\": " << speedup << ",\n"
         << "  \"frames_received\": " << wire.frames_received << ",\n"
         << "  \"protocol_errors\": " << wire.protocol_errors << ",\n"
         << "  \"scaling_gate_enforced\": " << (enforce_scaling ? "true" : "false") << ",\n"
         << "  \"parity_with_direct_service\": " << (parity_ok ? "true" : "false") << "\n"
         << "}\n";
    std::cout << "\nwrote " << json_path << "\n";

    // The acceptance gates: bit-identical remote results always; >= 2x
    // makespan for 4 concurrent clients when the host has cores to scale
    // into.
    const bool pass = parity_ok && (!enforce_scaling || speedup >= 2.0);
    if (!pass) std::cerr << "ACCEPTANCE FAILED\n";
    return pass ? 0 : 1;
}
