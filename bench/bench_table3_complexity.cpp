// Table 3: properties of the evaluated DNNs — architecture type and
// "complexity", the average number of substitution candidates at each
// iteration of the transformation process.
//
// Paper values: InceptionV3 50, SqueezeNet 20, ResNext-50 13, BERT 26,
// DALL-E 20, T-T 25, ViT 32. Shape to reproduce: InceptionV3 by far the
// richest; ResNext-50 the poorest.
#include <cstdio>

#include "bench_common.h"
#include "env/environment.h"
#include "rules/corpus.h"

using namespace xrlbench;

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Table 3: evaluated DNNs — type and complexity (avg candidates/step)");

    const Rule_set rules = standard_rule_corpus();

    std::printf("%-14s %-16s %12s\n", "DNN", "type", "complexity");
    std::printf("--------------------------------------------\n");
    for (const Model_spec& spec : evaluation_models(setup.scale)) {
        E2e_simulator sim(gtx1080_profile(), setup.seed);
        Env_config config;
        config.max_candidates = 128; // do not truncate the statistic
        config.max_steps = 12;
        Environment env(spec.build(), rules, sim, config);

        // Walk the transformation process with a uniform-random policy
        // (two episodes) and average the candidate counts.
        Rng rng(setup.seed ^ 0x77ULL);
        for (int episode = 0; episode < 2; ++episode) {
            env.reset();
            while (!env.done()) {
                const std::size_t n = env.candidates().size();
                env.step(n == 0 ? env.noop_action() : static_cast<int>(rng.uniform_index(n)));
            }
        }
        std::printf("%-14s %-16s %12.1f\n", spec.name.c_str(), spec.type.c_str(),
                    env.mean_candidates_per_step());
    }
    std::printf("\nPaper Table 3: InceptionV3 50, SqueezeNet 20, ResNext-50 13, BERT 26,\n"
                "DALL-E 20, T-T 25, ViT 32.\n");
    return 0;
}
