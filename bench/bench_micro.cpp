// Micro-benchmarks (google-benchmark) for the substrates: pattern
// matching, substitution, hashing, e-graph construction, GNN forward /
// backward, reference execution, and cost evaluation.
#include <benchmark/benchmark.h>

#include "core/agent.h"
#include "cost/cost_model.h"
#include "cost/e2e_simulator.h"
#include "gnn/gnn.h"
#include "ir/builder.h"
#include "ir/executor.h"
#include "models/models.h"
#include "optimizers/tensat/egraph.h"
#include "rules/candidate_engine.h"
#include "rules/corpus.h"

namespace {

using namespace xrl;

const Graph& inception()
{
    static const Graph g = make_inception_v3(Scale::smoke);
    return g;
}

const Graph& bert()
{
    static const Graph g = make_bert(Scale::smoke, 32);
    return g;
}

void BM_pattern_match_inception(benchmark::State& state)
{
    static const auto patterns = curated_patterns();
    const Pattern& fuse = patterns[3]; // fuse-conv-relu
    for (auto _ : state) {
        auto matches = find_matches(inception(), fuse);
        benchmark::DoNotOptimize(matches);
    }
}
BENCHMARK(BM_pattern_match_inception);

void BM_rule_apply_all_bert(benchmark::State& state)
{
    static const Rule_set rules = standard_rule_corpus();
    for (auto _ : state) {
        for (const auto& rule : rules) {
            auto candidates = rule->apply_all(bert(), 4);
            benchmark::DoNotOptimize(candidates);
        }
    }
}
BENCHMARK(BM_rule_apply_all_bert);

// The engine does strictly more than the loop above — on top of matching
// and materialising it canonically dedups the whole set — via one shared
// host index, the undo-log matcher, and fingerprint-gated materialisation.
void BM_candidate_engine_bert(benchmark::State& state)
{
    static const Rule_set rules = standard_rule_corpus();
    static const Candidate_engine engine(rules, Candidate_engine_config{4, 0});
    for (auto _ : state) {
        auto generated = engine.generate(bert());
        benchmark::DoNotOptimize(generated);
    }
}
BENCHMARK(BM_candidate_engine_bert);

void BM_rule_apply_all_inception(benchmark::State& state)
{
    static const Rule_set rules = standard_rule_corpus();
    for (auto _ : state) {
        for (const auto& rule : rules) {
            auto candidates = rule->apply_all(inception(), 4);
            benchmark::DoNotOptimize(candidates);
        }
    }
}
BENCHMARK(BM_rule_apply_all_inception);

void BM_candidate_engine_inception(benchmark::State& state)
{
    static const Rule_set rules = standard_rule_corpus();
    static const Candidate_engine engine(rules, Candidate_engine_config{4, 0});
    for (auto _ : state) {
        auto generated = engine.generate(inception());
        benchmark::DoNotOptimize(generated);
    }
}
BENCHMARK(BM_candidate_engine_inception);

void BM_candidate_engine_enumerate_bert(benchmark::State& state)
{
    static const Rule_set rules = standard_rule_corpus();
    static const Candidate_engine engine(rules, Candidate_engine_config{4, 0});
    for (auto _ : state) {
        auto records = engine.enumerate(bert());
        benchmark::DoNotOptimize(records);
    }
}
BENCHMARK(BM_candidate_engine_enumerate_bert);

void BM_canonical_hash(benchmark::State& state)
{
    for (auto _ : state) benchmark::DoNotOptimize(inception().canonical_hash());
}
BENCHMARK(BM_canonical_hash);

void BM_graph_copy(benchmark::State& state)
{
    for (auto _ : state) {
        Graph copy = inception();
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_graph_copy);

void BM_egraph_encode_bert(benchmark::State& state)
{
    for (auto _ : state) {
        auto enc = encode_graph(bert());
        benchmark::DoNotOptimize(enc);
    }
}
BENCHMARK(BM_egraph_encode_bert);

void BM_cost_model_inception(benchmark::State& state)
{
    const Cost_model cost(gtx1080_profile());
    for (auto _ : state) benchmark::DoNotOptimize(cost.graph_cost_ms(inception()));
}
BENCHMARK(BM_cost_model_inception);

void BM_e2e_simulate_inception(benchmark::State& state)
{
    E2e_simulator sim(gtx1080_profile(), 1);
    for (auto _ : state) benchmark::DoNotOptimize(sim.noiseless_ms(inception()));
}
BENCHMARK(BM_e2e_simulate_inception);

void BM_gnn_forward_bert(benchmark::State& state)
{
    Gnn_config config;
    config.hidden_dim = 16;
    config.global_dim = 16;
    config.num_gat_layers = 5;
    Rng rng(1);
    Gnn_encoder encoder(config, rng);
    const Encoded_graph enc = encode_graph_for_gnn(bert());
    for (auto _ : state) {
        Tape tape;
        auto out = encoder(tape, enc);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_gnn_forward_bert);

void BM_gnn_forward_backward_bert(benchmark::State& state)
{
    Gnn_config config;
    config.hidden_dim = 16;
    config.global_dim = 16;
    config.num_gat_layers = 5;
    Rng rng(1);
    Gnn_encoder encoder(config, rng);
    const Encoded_graph enc = encode_graph_for_gnn(bert());
    for (auto _ : state) {
        Tape tape;
        auto out = encoder(tape, enc);
        tape.backward(tape.sum_all(out.graph_embeddings));
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_gnn_forward_backward_bert);

void BM_reference_executor_dense(benchmark::State& state)
{
    const Graph g = make_dense_layer_example();
    Rng rng(1);
    const Binding_map bindings = random_bindings(g, rng);
    for (auto _ : state) benchmark::DoNotOptimize(execute(g, bindings));
}
BENCHMARK(BM_reference_executor_dense);

} // namespace

BENCHMARK_MAIN();
