// Figure 5: heatmap of rewrite rules applied by the trained X-RLflow
// agents during optimisation — which rules, how often, per DNN.
//
// Paper shape: convolutional models are hit by more distinct rules but
// have shorter transformation sequences; transformers use fewer rules with
// longer sequences (the long-horizon credit RL exploits).
//
// Reuses the policies cached by bench_figure4_speedup when present.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "rules/corpus.h"

using namespace xrlbench;

int main()
{
    const Bench_setup setup = setup_from_env();
    print_header("Figure 5: rewrite-rule application heatmap (trained agents)");

    const Rule_set rules = standard_rule_corpus();
    const auto specs = evaluation_models(setup.scale);

    std::vector<std::vector<int>> counts;
    std::vector<int> sequence_lengths;
    for (const Model_spec& spec : specs) {
        const auto system = trained_system(rules, spec, setup);
        const Optimisation_outcome outcome = system->optimise(spec.build());
        counts.push_back(outcome.rule_counts);
        sequence_lengths.push_back(outcome.steps);
        std::fflush(stdout);
    }

    // Columns: rules applied at least once by any model (as in the paper's
    // figure, which shows only the active rules).
    std::vector<std::size_t> active;
    for (std::size_t r = 0; r < rules.size(); ++r) {
        for (const auto& row : counts) {
            if (row[r] > 0) {
                active.push_back(r);
                break;
            }
        }
    }

    std::printf("%-14s %6s", "DNN", "steps");
    for (std::size_t k = 0; k < active.size(); ++k) std::printf(" r%-3zu", k + 1);
    std::printf("\n");
    for (std::size_t m = 0; m < specs.size(); ++m) {
        std::printf("%-14s %6d", specs[m].name.c_str(), sequence_lengths[m]);
        for (const std::size_t r : active) std::printf(" %4d", counts[m][r]);
        std::printf("\n");
    }
    std::printf("\nLegend:\n");
    for (std::size_t k = 0; k < active.size(); ++k)
        std::printf("  r%-3zu %s\n", k + 1, rules[active[k]]->name().c_str());
    std::printf("\nPaper Figure 5: ~9 active rules; counts per model between 1 and 29;\n"
                "transformers show the longest substitution sequences.\n");
    return 0;
}
