// Candidate-generation engine benchmark: legacy per-rule apply_all scan vs
// Candidate_engine, plus environment steps-per-second with both backends.
//
// Emits BENCH_candidates.json (path overridable via argv[1]) recording the
// before/after numbers behind the README's "Candidate generation" section.
// The env rollout always takes action 0, so both backends walk the same
// graph trajectory and the comparison isolates candidate generation.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "cost/e2e_simulator.h"
#include "env/environment.h"
#include "models/models.h"
#include "rules/candidate_engine.h"
#include "rules/corpus.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

using namespace xrl;
using xrlbench::print_header;

double seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Time `f` adaptively: enough iterations for ~0.3 s of work.
template <typename F>
double time_us(F&& f)
{
    int iters = 1;
    for (;;) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) f();
        const double elapsed = seconds_since(start);
        if (elapsed > 0.3 || iters > (1 << 20)) return elapsed * 1e6 / iters;
        iters *= 4;
    }
}

/// The pre-engine candidate pass: per-rule apply_all + canonical dedup
/// (what Environment::regenerate_candidates ran before the engine).
std::size_t legacy_pass(const Graph& host, const Rule_set& rules, std::size_t per_rule_limit)
{
    std::unordered_set<std::uint64_t> seen;
    seen.insert(host.canonical_hash());
    std::size_t kept = 0;
    for (const auto& rule : rules)
        for (const Graph& candidate : rule->apply_all(host, per_rule_limit))
            if (seen.insert(candidate.canonical_hash()).second) ++kept;
    return kept;
}

struct Env_throughput {
    double steps_per_second = 0.0;
    int steps = 0;
    Pool_stats pool;
    Arena_stats arena;
};

Env_throughput env_rollout(const Graph& model, const Rule_set& rules, bool use_engine,
                           int max_steps)
{
    E2e_simulator simulator(gtx1080_profile(), 7);
    Env_config config;
    config.max_steps = max_steps;
    config.use_candidate_engine = use_engine;
    // The bench measures the production configuration; the rebuild-and-
    // compare parity check (on by default in debug builds) is covered by
    // the A/B gate in test_incremental_index.
    config.verify_incremental_index = false;
    Environment env(model, rules, simulator, config);

    Env_throughput out;
    // With XRLFLOW_TRACE set the rollout runs under a trace id, so the
    // env-step and candidate-phase spans land in the process buffer (the
    // trace artifact written at exit).
    const Trace_scope trace_scope(trace_enabled() ? new_trace_id() : 0, 0);
    // One untimed warm-up rollout fills the engine's slot pool and the
    // thread-local scratch, then three timed rollouts measure the
    // steady state (and average away single-rollout noise). Both
    // backends get the identical treatment.
    while (!env.done()) env.step(0);
    env.reset();
    const auto start = std::chrono::steady_clock::now();
    for (int rollout = 0; rollout < 3; ++rollout) {
        while (!env.done()) {
            env.step(0); // deterministic walk: both backends see the same graphs
            ++out.steps;
        }
        env.reset();
    }
    out.steps_per_second = out.steps / seconds_since(start);
    if (env.engine() != nullptr) {
        out.pool = env.engine()->step_pool_stats();
        out.arena = env.engine()->step_arena_stats();
    }
    return out;
}

} // namespace

int main(int argc, char** argv)
{
    const std::string json_path = argc > 1 ? argv[1] : "BENCH_candidates.json";
    const Rule_set rules = standard_rule_corpus();
    const Graph bert = make_bert(Scale::smoke, 32);
    const Graph inception = make_inception_v3(Scale::smoke);
    constexpr std::size_t per_rule_limit = 4;

    print_header("Candidate generation: legacy apply_all scan vs Candidate_engine");

    const Candidate_engine engine(rules, Candidate_engine_config{per_rule_limit, 0});

    const double legacy_bert_us = time_us([&] { legacy_pass(bert, rules, per_rule_limit); });
    const double engine_bert_us = time_us([&] { engine.generate(bert); });
    const double legacy_incep_us = time_us([&] { legacy_pass(inception, rules, per_rule_limit); });
    const double engine_incep_us = time_us([&] { engine.generate(inception); });

    std::printf("%-28s %14s %14s %9s\n", "candidate pass", "legacy (us)", "engine (us)", "speedup");
    std::printf("%-28s %14.1f %14.1f %8.2fx\n", "bert (smoke)", legacy_bert_us, engine_bert_us,
                legacy_bert_us / engine_bert_us);
    std::printf("%-28s %14.1f %14.1f %8.2fx\n", "inception-v3 (smoke)", legacy_incep_us,
                engine_incep_us, legacy_incep_us / engine_incep_us);

    const Env_throughput legacy_env = env_rollout(bert, rules, /*use_engine=*/false, 12);
    const Env_throughput engine_env = env_rollout(bert, rules, /*use_engine=*/true, 12);

    std::printf("\n%-28s %14s %14s %9s\n", "env rollout (bert)", "legacy", "engine", "speedup");
    std::printf("%-28s %12.1f/s %12.1f/s %8.2fx\n", "steps per second",
                legacy_env.steps_per_second, engine_env.steps_per_second,
                engine_env.steps_per_second / legacy_env.steps_per_second);

    // Per-phase engine timings, straight from the registry histograms the
    // engine publishes (every generate()/enumerate() above observed them).
    const char* const phases[] = {"index_build", "match", "dedup", "materialise",
                                  "finalise_rewrite"};
    std::printf("\n%-28s %10s %12s %12s %12s\n", "engine phase", "count", "mean (us)",
                "p50 (us)", "p95 (us)");
    std::string phase_json;
    for (const char* phase : phases) {
        const Histogram::Snapshot snap = candidate_phase_histogram(phase).snapshot();
        std::printf("%-28s %10llu %12.2f %12.2f %12.2f\n", phase,
                    static_cast<unsigned long long>(snap.count), snap.mean(),
                    snap.quantile(0.5), snap.quantile(0.95));
        if (!phase_json.empty()) phase_json += ",\n";
        phase_json += "    \"" + std::string(phase) + "\": {\"count\": " +
                      std::to_string(snap.count) + ", \"mean\": " + std::to_string(snap.mean()) +
                      ", \"p50\": " + std::to_string(snap.quantile(0.5)) +
                      ", \"p95\": " + std::to_string(snap.quantile(0.95)) + "}";
    }

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"per_rule_limit\": " << per_rule_limit << ",\n"
         << "  \"candidate_pass_us\": {\n"
         << "    \"bert\": {\"legacy\": " << legacy_bert_us << ", \"engine\": " << engine_bert_us
         << ", \"speedup\": " << legacy_bert_us / engine_bert_us << "},\n"
         << "    \"inception\": {\"legacy\": " << legacy_incep_us
         << ", \"engine\": " << engine_incep_us
         << ", \"speedup\": " << legacy_incep_us / engine_incep_us << "}\n"
         << "  },\n"
         << "  \"env_steps_per_second\": {\n"
         << "    \"bert\": {\"legacy\": " << legacy_env.steps_per_second
         << ", \"engine\": " << engine_env.steps_per_second
         << ", \"speedup\": " << engine_env.steps_per_second / legacy_env.steps_per_second
         << ", \"steps\": " << engine_env.steps << "}\n"
         << "  },\n"
         << "  \"arena\": {\n"
         << "    \"pool_slots\": " << engine_env.pool.slots
         << ", \"pool_high_water_slots\": " << engine_env.pool.high_water_slots
         << ", \"pool_acquires\": " << engine_env.pool.acquires
         << ", \"pool_reuses\": " << engine_env.pool.reuses << ",\n"
         << "    \"arena_chunks\": " << engine_env.arena.chunks
         << ", \"arena_reserved_bytes\": " << engine_env.arena.reserved_bytes
         << ", \"arena_high_water_bytes\": " << engine_env.arena.high_water_bytes << "\n"
         << "  },\n"
         << "  \"candidate_phase_us\": {\n"
         << phase_json << "\n"
         << "  }\n"
         << "}\n";
    std::cout << "\nwrote " << json_path << "\n";

    if (trace_enabled()) {
        const std::string trace_path = argc > 2 ? argv[2] : "BENCH_candidates_trace.json";
        std::ofstream trace_out(trace_path);
        write_chrome_trace(trace_out, Trace_buffer::global().spans());
        std::cout << "wrote " << trace_path << " (" << Trace_buffer::global().size()
                  << " spans)\n";
    }
    return 0;
}
